(* Property tests for the compiled zero-allocation query engine
   (Structure.Engine): on every Table 1 circuit the engine must answer
   exactly like the linear reference oracle — including out-of-domain
   and fallback probes — sessions must be safely reusable across
   interleaved structures, the hot-box cache must actually hit on
   sizing-loop traffic, and batch serving must be bit-identical to
   sequential answering at any job count. *)

open Mps_rng
open Mps_geometry
open Mps_netlist
open Mps_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tiny_config =
  {
    Generator.fast_config with
    Generator.explorer_iterations = 8;
    bdio = { Generator.fast_config.Generator.bdio with Bdio.iterations = 60 };
    max_placements = 25;
    backup_iterations = 300;
  }

let structures =
  lazy
    (List.map
       (fun c -> (c, fst (Generator.generate ~config:tiny_config c)))
       Benchmarks.all)

let for_all f () = List.iter (fun (c, s) -> f c s) (Lazy.force structures)

(* Probe generator mixing the three answer regimes: uniform in-domain
   vectors (hits and fallbacks), vectors pushed past the designer max
   on one axis (out-of-domain), and jitter around a stored best vector
   (mostly hits, the sizing-loop shape). *)
let probe rng structure stored =
  let circuit = Structure.circuit structure in
  let bounds = Circuit.dim_bounds circuit in
  let base = Dimbox.random_dims rng bounds in
  match Rng.int rng 4 with
  | 0 | 1 -> base
  | 2 ->
    let i = Rng.int rng (Dims.n_blocks base) in
    if Rng.int rng 2 = 0 then
      Dims.set_width base i (Interval.hi (Dimbox.w_interval bounds i) + 1 + Rng.int rng 8)
    else
      Dims.set_height base i
        (Interval.hi (Dimbox.h_interval bounds i) + 1 + Rng.int rng 8)
  | _ ->
    let s : Stored.t = stored.(Rng.int rng (Array.length stored)) in
    let d = ref s.Stored.best_dims in
    for _ = 1 to 2 do
      let i = Rng.int rng (Dims.n_blocks !d) in
      let bump = Rng.int_in rng (-2) 2 in
      d :=
        (if Rng.int rng 2 = 0 then Dims.set_width !d i (max 1 (Dims.width !d i + bump))
         else Dims.set_height !d i (max 1 (Dims.height !d i + bump)))
    done;
    !d

(* Satellite: engine answers == linear oracle (and the reference
   compiled query) on 10k mixed probes per circuit. *)
let test_engine_matches_oracle c structure =
  let engine = Structure.Engine.create structure in
  let session = Structure.Engine.new_session () in
  let stored = Structure.placements structure in
  let rng = Rng.create ~seed:11 in
  let seen_hit = ref false and seen_fb = ref false and seen_ood = ref false in
  for k = 1 to 10_000 do
    let dims = probe rng structure stored in
    let a_lin, s_lin = Structure.query_linear structure dims in
    let a_eng, s_eng = Structure.Engine.query engine session dims in
    let a_old, _ = Structure.query structure dims in
    (match a_lin with
    | Structure.Stored_placement _ -> seen_hit := true
    | Structure.Fallback -> seen_fb := true
    | Structure.Out_of_domain -> seen_ood := true);
    if not (a_eng = a_lin && a_old = a_lin && s_eng == s_lin) then
      Alcotest.failf "%s probe %d: engine %s, query %s, linear %s" c.Circuit.name k
        (Structure.answer_to_string a_eng)
        (Structure.answer_to_string a_old)
        (Structure.answer_to_string a_lin)
  done;
  check_bool (c.Circuit.name ^ ": probes covered stored hits") true !seen_hit;
  check_bool (c.Circuit.name ^ ": probes covered out-of-domain") true !seen_ood;
  ignore !seen_fb (* fallbacks occur unless coverage is total; not guaranteed *)

(* Satellite: one session interleaved across two different engines
   (different block counts and capacities) answers exactly like two
   dedicated sessions. *)
let test_session_interleaving_safe () =
  let all = Lazy.force structures in
  let _, s1 = List.hd all in
  let _, s2 =
    List.find (fun (c, _) -> String.equal c.Circuit.name "benchmark24") all
  in
  let e1 = Structure.Engine.create s1 and e2 = Structure.Engine.create s2 in
  let shared = Structure.Engine.new_session () in
  let own1 = Structure.Engine.new_session () in
  let own2 = Structure.Engine.new_session () in
  let st1 = Structure.placements s1 and st2 = Structure.placements s2 in
  let rng = Rng.create ~seed:13 in
  for _ = 1 to 2000 do
    let d1 = probe rng s1 st1 and d2 = probe rng s2 st2 in
    let a1_shared, _ = Structure.Engine.query e1 shared d1 in
    let a2_shared, _ = Structure.Engine.query e2 shared d2 in
    let a1_own, _ = Structure.Engine.query e1 own1 d1 in
    let a2_own, _ = Structure.Engine.query e2 own2 d2 in
    check_bool "interleaved answer (engine 1)" true (a1_shared = a1_own);
    check_bool "interleaved answer (engine 2)" true (a2_shared = a2_own)
  done;
  check_int "shared session counted every query" 4000
    (Structure.Engine.stats shared).Structure.Engine.queries

(* The hot-box cache must answer repeated and slightly perturbed
   queries without re-narrowing, and must never change an answer. *)
let test_hot_box_cache c structure =
  let engine = Structure.Engine.create structure in
  let session = Structure.Engine.new_session () in
  (* A guaranteed stored hit: any explored placement's best vector. *)
  let stored = Structure.placements structure in
  let hit =
    match
      Array.find_opt
        (fun (s : Stored.t) ->
          match Structure.query_linear structure s.Stored.best_dims with
          | Structure.Stored_placement _, _ -> true
          | _ -> false)
        stored
    with
    | Some s -> s.Stored.best_dims
    | None -> Alcotest.failf "%s: no stored best vector queries back" c.Circuit.name
  in
  let reference = fst (Structure.query_linear structure hit) in
  for _ = 1 to 50 do
    let a, _ = Structure.Engine.query engine session hit in
    check_bool (c.Circuit.name ^ ": cached answer stable") true (a = reference)
  done;
  let s = Structure.Engine.stats session in
  check_int (c.Circuit.name ^ ": queries counted") 50 s.Structure.Engine.queries;
  check_bool
    (Printf.sprintf "%s: cache hit on every repeat (%d/50)" c.Circuit.name
       s.Structure.Engine.cache_hits)
    true
    (s.Structure.Engine.cache_hits = 49)

(* instantiate_into fills the scratch buffer with exactly the rects the
   allocating paths produce. *)
let test_instantiate_into_matches c structure =
  let engine = Structure.Engine.create structure in
  let session = Structure.Engine.new_session () in
  let stored = Structure.placements structure in
  let rng = Rng.create ~seed:17 in
  for _ = 1 to 500 do
    let dims = probe rng structure stored in
    let expected = Structure.instantiate structure dims in
    let got = Structure.Engine.instantiate_into engine session dims in
    check_int (c.Circuit.name ^ ": rect count") (Array.length expected)
      (Array.length got);
    Array.iteri
      (fun i r ->
        check_bool (c.Circuit.name ^ ": rect equal") true (Rect.equal r got.(i)))
      expected
  done

(* Batch serving: identical answers sequentially, with a pool, and at
   different job counts. *)
let test_batch_matches_sequential c structure =
  let engine = Structure.Engine.create structure in
  let stored = Structure.placements structure in
  let rng = Rng.create ~seed:19 in
  let dims = Array.init 257 (fun _ -> probe rng structure stored) in
  let expected =
    Array.map (fun d -> fst (Structure.query_linear structure d)) dims
  in
  let answers_seq = Array.map fst (Structure.Engine.query_batch engine dims) in
  check_bool (c.Circuit.name ^ ": sequential batch") true (answers_seq = expected);
  Mps_parallel.Pool.with_pool ~jobs:3 (fun pool ->
      let answers_par =
        Array.map fst (Structure.Engine.query_batch ~pool engine dims)
      in
      check_bool (c.Circuit.name ^ ": pooled batch") true (answers_par = expected);
      let rects_seq = Structure.Engine.instantiate_batch engine dims in
      let rects_par = Structure.Engine.instantiate_batch ~pool engine dims in
      Array.iteri
        (fun k rs ->
          Array.iteri
            (fun i r ->
              check_bool
                (c.Circuit.name ^ ": batched floorplans equal")
                true
                (Rect.equal r rects_par.(k).(i)))
            rs)
        rects_seq)

(* Plan shape: every axis row is either in the narrowing plan or
   provably non-selective, and the skip rule never hides a row that
   could narrow (the oracle test above is the semantic check; this one
   pins the accounting). *)
let test_plan_accounting c structure =
  let engine = Structure.Engine.create structure in
  let n = Circuit.n_blocks (Structure.circuit structure) in
  check_int
    (c.Circuit.name ^ ": rows partition the 2N axes")
    (2 * n)
    (Structure.Engine.n_active_rows engine + Structure.Engine.n_skipped_rows engine)

let test_describe_reports_cache () =
  let _, structure = List.hd (Lazy.force structures) in
  let engine = Structure.Engine.create structure in
  let session = Structure.Engine.new_session () in
  ignore (Structure.Engine.query engine session (Dimbox.center (Circuit.dim_bounds (Structure.circuit structure))));
  let text = Structure.Engine.describe engine session in
  let contains needle =
    let n = String.length needle and m = String.length text in
    let rec scan i = i + n <= m && (String.equal (String.sub text i n) needle || scan (i + 1)) in
    scan 0
  in
  check_bool "describe mentions the hot-box cache" true (contains "hot-box cache");
  check_bool "describe mentions narrowing rows" true (contains "narrowing rows")

let suite =
  [
    Alcotest.test_case "all benchmarks: engine == linear oracle on 10k probes" `Quick
      (for_all test_engine_matches_oracle);
    Alcotest.test_case "session reuse across interleaved engines is safe" `Quick
      test_session_interleaving_safe;
    Alcotest.test_case "all benchmarks: hot-box cache hits and stays exact" `Quick
      (for_all test_hot_box_cache);
    Alcotest.test_case "all benchmarks: instantiate_into matches instantiate" `Quick
      (for_all test_instantiate_into_matches);
    Alcotest.test_case "all benchmarks: batch serving matches sequential" `Quick
      (for_all test_batch_matches_sequential);
    Alcotest.test_case "all benchmarks: plan rows partition the axes" `Quick
      (for_all test_plan_accounting);
    Alcotest.test_case "describe reports plan shape and cache counters" `Quick
      test_describe_reports_cache;
  ]

(* Tests for the multi-placement structure core: stored placements, the
   BDIO, the builder's Resolve Overlaps / Store Placement, the compiled
   structure's query, and the generator. *)

open Mps_rng
open Mps_geometry
open Mps_netlist
open Mps_placement
open Mps_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let iv = Interval.make

(* A tiny one-block circuit lets us hand-build stored placements with
   chosen validity boxes. *)
let circuit1 =
  Circuit.make ~name:"one"
    ~blocks:[| Block.make_wh ~id:0 ~name:"a" ~w:(1, 100) ~h:(1, 100) |]
    ~nets:[| Net.make ~id:0 ~name:"n" ~pins:[ Net.block_pin 0; Net.pad ~px:0.0 ~py:0.0 ] |]

let expansion1 = Dimbox.make ~w:[| iv 1 100 |] ~h:[| iv 1 100 |]

let stored1 ?(avg = 10.0) ?(best = 5.0) ~w ~h () =
  let box = Dimbox.make ~w:[| w |] ~h:[| h |] in
  Stored.make ~template_like:false
    ~placement:(Placement.make ~coords:[| (0, 0) |] ~die_w:200 ~die_h:200)
    ~box ~expansion:expansion1 ~avg_cost:avg ~best_cost:best
    ~best_dims:(Dimbox.center box)

(* Stored *)

let test_stored_validation () =
  Alcotest.check_raises "box outside expansion"
    (Invalid_argument "Stored.make: validity box exceeds the expansion box") (fun () ->
      ignore
        (Stored.make ~template_like:false
           ~placement:(Placement.make ~coords:[| (0, 0) |] ~die_w:200 ~die_h:200)
           ~box:(Dimbox.make ~w:[| iv 1 200 |] ~h:[| iv 1 50 |])
           ~expansion:expansion1 ~avg_cost:1.0 ~best_cost:1.0
           ~best_dims:(Dims.of_pairs [| (10, 10) |])))

let test_stored_with_box_clamps_best () =
  let s = stored1 ~w:(iv 10 50) ~h:(iv 10 50) () in
  let s' = Stored.with_box s (Dimbox.make ~w:[| iv 40 50 |] ~h:[| iv 10 50 |]) in
  check_bool "best clamped into new box" true
    (Dimbox.contains s'.Stored.box s'.Stored.best_dims)

let test_stored_instantiate_clamped_legal () =
  let s = stored1 ~w:(iv 10 50) ~h:(iv 10 50) () in
  let wild = Dims.of_pairs [| (100, 100) |] in
  let rects = Stored.instantiate_clamped s wild in
  check_bool "clamped inside expansion" true
    (rects.(0).Rect.w <= 100 && rects.(0).Rect.h <= 100)

(* Bdio.shrink_box *)

let test_shrink_cost_ratio () =
  let box = Dimbox.make ~w:[| iv 0 100 |] ~h:[| iv 0 100 |] in
  let best_dims = Dims.of_pairs [| (50, 50) |] in
  let shrunk =
    Bdio.shrink_box ~rule:Bdio.Cost_ratio ~box ~best_dims ~avg_cost:100.0 ~best_cost:50.0
  in
  (* factor 0.5: half-width ceil(0.5*101/2)=26 around 50 *)
  check_bool "contains best" true (Dimbox.contains shrunk best_dims);
  check_bool "strictly smaller" true
    (Interval.length (Dimbox.w_interval shrunk 0) < 101);
  check_bool "contained in box" true (Dimbox.contains_box ~outer:box ~inner:shrunk)

let test_shrink_tighter_when_avg_far () =
  let box = Dimbox.make ~w:[| iv 0 100 |] ~h:[| iv 0 100 |] in
  let best_dims = Dims.of_pairs [| (50, 50) |] in
  let len rule avg =
    let b = Bdio.shrink_box ~rule ~box ~best_dims ~avg_cost:avg ~best_cost:10.0 in
    Interval.length (Dimbox.w_interval b 0)
  in
  check_bool "farther average, tighter interval" true
    (len Bdio.Cost_ratio 100.0 < len Bdio.Cost_ratio 12.0)

let test_shrink_rules () =
  let box = Dimbox.make ~w:[| iv 0 100 |] ~h:[| iv 0 100 |] in
  let best_dims = Dims.of_pairs [| (1, 100) |] in
  let no_shrink =
    Bdio.shrink_box ~rule:Bdio.No_shrink ~box ~best_dims ~avg_cost:9.0 ~best_cost:1.0
  in
  check_bool "no_shrink keeps box" true (Dimbox.equal no_shrink box);
  let fixed =
    Bdio.shrink_box ~rule:(Bdio.Fixed 0.2) ~box ~best_dims ~avg_cost:9.0 ~best_cost:1.0
  in
  check_bool "fixed contains best at the corner" true (Dimbox.contains fixed best_dims);
  Alcotest.check_raises "bad fixed factor"
    (Invalid_argument "Bdio.shrink_box: factor must be in (0,1]") (fun () ->
      ignore
        (Bdio.shrink_box ~rule:(Bdio.Fixed 0.0) ~box ~best_dims ~avg_cost:9.0 ~best_cost:1.0))

(* Bdio.optimize *)

let test_bdio_optimize () =
  let rng = Rng.create ~seed:7 in
  let c = Benchmarks.circ01 in
  let die_w, die_h = Circuit.default_die c in
  let placement = Placement.random rng c ~die_w ~die_h in
  let box = Expand.expand c placement in
  let r = Bdio.optimize ~rng c placement ~box in
  check_bool "avg >= best" true (r.Bdio.avg_cost >= r.Bdio.best_cost);
  check_bool "box contained" true (Dimbox.contains_box ~outer:box ~inner:r.Bdio.box);
  check_bool "best dims in box" true (Dimbox.contains r.Bdio.box r.Bdio.best_dims);
  (* the best dims instantiate legally (inside the expansion box) *)
  check_bool "best dims legal" true (Placement.is_legal placement r.Bdio.best_dims)

let test_bdio_deterministic () =
  let c = Benchmarks.circ01 in
  let die_w, die_h = Circuit.default_die c in
  let run seed =
    let rng = Rng.create ~seed in
    let placement = Placement.random rng c ~die_w ~die_h in
    let box = Expand.expand c placement in
    Bdio.optimize ~rng c placement ~box
  in
  let a = run 3 and b = run 3 in
  Alcotest.(check (float 1e-12)) "same best" a.Bdio.best_cost b.Bdio.best_cost;
  check_bool "same box" true (Dimbox.equal a.Bdio.box b.Bdio.box)

(* Builder.shrink_box_against *)

let test_shrink_against_side () =
  let victim = Dimbox.make ~w:[| iv 0 10 |] ~h:[| iv 0 10 |] in
  let other = Dimbox.make ~w:[| iv 8 20 |] ~h:[| iv 0 10 |] in
  (match Builder.shrink_box_against ~victim ~other with
  | Builder.Shrunk b ->
    check_bool "cut at 7" true (Interval.equal (Dimbox.w_interval b 0) (iv 0 7));
    check_bool "now disjoint" true (not (Dimbox.overlaps b other))
  | _ -> Alcotest.fail "expected Shrunk");
  let other_left = Dimbox.make ~w:[| iv (-5) 2 |] ~h:[| iv 0 10 |] in
  match Builder.shrink_box_against ~victim ~other:other_left with
  | Builder.Shrunk b ->
    check_bool "cut from 3" true (Interval.equal (Dimbox.w_interval b 0) (iv 3 10))
  | _ -> Alcotest.fail "expected Shrunk"

let test_shrink_against_fork () =
  let victim = Dimbox.make ~w:[| iv 0 20 |] ~h:[| iv 0 10 |] in
  let other = Dimbox.make ~w:[| iv 8 12 |] ~h:[| iv 0 10 |] in
  match Builder.shrink_box_against ~victim ~other with
  | Builder.Forked (b1, b2) ->
    check_bool "left piece" true (Interval.equal (Dimbox.w_interval b1 0) (iv 0 7));
    check_bool "right piece" true (Interval.equal (Dimbox.w_interval b2 0) (iv 13 20));
    check_bool "pieces disjoint from other" true
      ((not (Dimbox.overlaps b1 other)) && not (Dimbox.overlaps b2 other))
  | _ -> Alcotest.fail "expected Forked"

let test_shrink_against_drop () =
  let victim = Dimbox.make ~w:[| iv 5 8 |] ~h:[| iv 5 8 |] in
  let other = Dimbox.make ~w:[| iv 0 10 |] ~h:[| iv 0 10 |] in
  check_bool "dropped" true (Builder.shrink_box_against ~victim ~other = Builder.Dropped)

let test_shrink_against_picks_smallest_overlap () =
  (* w overlap length 3, h overlap length 6: the cut happens on w *)
  let victim = Dimbox.make ~w:[| iv 0 10 |] ~h:[| iv 0 10 |] in
  let other = Dimbox.make ~w:[| iv 8 20 |] ~h:[| iv 5 20 |] in
  match Builder.shrink_box_against ~victim ~other with
  | Builder.Shrunk b ->
    check_bool "w cut" true (Interval.equal (Dimbox.w_interval b 0) (iv 0 7));
    check_bool "h untouched" true (Interval.equal (Dimbox.h_interval b 0) (iv 0 10))
  | _ -> Alcotest.fail "expected Shrunk"

let test_shrink_against_disjoint_raises () =
  let victim = Dimbox.make ~w:[| iv 0 5 |] ~h:[| iv 0 5 |] in
  let other = Dimbox.make ~w:[| iv 10 20 |] ~h:[| iv 0 5 |] in
  Alcotest.check_raises "disjoint"
    (Invalid_argument "Builder.shrink_box_against: boxes are disjoint") (fun () ->
      ignore (Builder.shrink_box_against ~victim ~other))

(* Builder resolve_and_store *)

let builder_invariants b =
  check_bool "boxes disjoint" true (Builder.boxes_disjoint b);
  check_bool "rows consistent" true (Builder.rows_consistent b)

let test_store_first () =
  let b = Builder.create circuit1 in
  let ids = Builder.resolve_and_store b (stored1 ~w:(iv 10 50) ~h:(iv 10 50) ()) in
  check_int "stored once" 1 (List.length ids);
  check_int "one live" 1 (Builder.n_live b);
  builder_invariants b

let test_store_disjoint_pair () =
  let b = Builder.create circuit1 in
  ignore (Builder.resolve_and_store b (stored1 ~w:(iv 1 10) ~h:(iv 1 10) ()));
  ignore (Builder.resolve_and_store b (stored1 ~w:(iv 20 30) ~h:(iv 1 10) ()));
  check_int "two live" 2 (Builder.n_live b);
  builder_invariants b

let test_store_overlap_candidate_loses () =
  let b = Builder.create circuit1 in
  (* stored has lower avg cost: candidate gets shrunk *)
  ignore (Builder.resolve_and_store b (stored1 ~avg:5.0 ~best:4.0 ~w:(iv 1 10) ~h:(iv 1 100) ()));
  let ids = Builder.resolve_and_store b (stored1 ~avg:9.0 ~best:4.0 ~w:(iv 5 20) ~h:(iv 1 100) ()) in
  check_int "candidate survives shrunk" 1 (List.length ids);
  let survivor = Option.get (Builder.get b (List.hd ids)) in
  check_bool "candidate kept only 11..20" true
    (Interval.equal (Dimbox.w_interval survivor.Stored.box 0) (iv 11 20));
  builder_invariants b

let test_store_overlap_stored_loses () =
  let b = Builder.create circuit1 in
  let first_ids =
    Builder.resolve_and_store b (stored1 ~avg:9.0 ~best:4.0 ~w:(iv 1 10) ~h:(iv 1 100) ())
  in
  ignore (Builder.resolve_and_store b (stored1 ~avg:5.0 ~best:4.0 ~w:(iv 5 20) ~h:(iv 1 100) ()));
  (* the first (higher avg) placement was shrunk: its original id is gone *)
  check_bool "original id removed" true (Builder.get b (List.hd first_ids) = None);
  check_int "two live" 2 (Builder.n_live b);
  builder_invariants b

let test_store_candidate_dropped () =
  let b = Builder.create circuit1 in
  ignore (Builder.resolve_and_store b (stored1 ~avg:5.0 ~best:4.0 ~w:(iv 1 100) ~h:(iv 1 100) ()));
  let ids =
    Builder.resolve_and_store b (stored1 ~avg:9.0 ~best:4.0 ~w:(iv 5 20) ~h:(iv 5 20) ())
  in
  check_bool "candidate dropped" true (ids = []);
  check_int "one live" 1 (Builder.n_live b);
  builder_invariants b

let test_store_stored_fork () =
  let b = Builder.create circuit1 in
  ignore (Builder.resolve_and_store b (stored1 ~avg:9.0 ~best:4.0 ~w:(iv 1 30) ~h:(iv 1 10) ()));
  (* candidate (better avg) cuts a hole in the middle of the stored one *)
  ignore (Builder.resolve_and_store b (stored1 ~avg:5.0 ~best:4.0 ~w:(iv 10 20) ~h:(iv 1 10) ()));
  check_int "fork: three live" 3 (Builder.n_live b);
  builder_invariants b

let test_overlapping_query () =
  let b = Builder.create circuit1 in
  let ids1 = Builder.resolve_and_store b (stored1 ~w:(iv 1 10) ~h:(iv 1 10) ()) in
  let _ids2 = Builder.resolve_and_store b (stored1 ~w:(iv 20 30) ~h:(iv 1 10) ()) in
  let probe = Dimbox.make ~w:[| iv 5 8 |] ~h:[| iv 5 8 |] in
  Alcotest.(check (list int)) "only first overlaps" ids1 (Builder.overlapping b probe);
  let nowhere = Dimbox.make ~w:[| iv 50 60 |] ~h:[| iv 50 60 |] in
  Alcotest.(check (list int)) "none" [] (Builder.overlapping b nowhere)

let test_coverage_sums () =
  let b = Builder.create circuit1 in
  (* bounds are w,h in 1..100: each 10x10-ish box covers (10/100)^2 *)
  ignore (Builder.resolve_and_store b (stored1 ~w:(iv 1 10) ~h:(iv 1 100) ()));
  Alcotest.(check (float 1e-9)) "10% coverage" 0.1 (Builder.coverage b);
  ignore (Builder.resolve_and_store b (stored1 ~w:(iv 11 20) ~h:(iv 1 100) ()));
  Alcotest.(check (float 1e-9)) "20% coverage" 0.2 (Builder.coverage b)

(* Random-workload property: whatever sequence of candidates arrives,
   stored boxes stay pairwise disjoint and rows stay consistent. *)
let arb_boxes =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 12)
        (let* wlo = int_range 1 80 in
         let* wlen = int_range 0 30 in
         let* hlo = int_range 1 80 in
         let* hlen = int_range 0 30 in
         let* avg = float_range 1.0 20.0 in
         return (wlo, min 100 (wlo + wlen), hlo, min 100 (hlo + hlen), avg)))
  in
  QCheck.make
    ~print:(fun l ->
      String.concat ";"
        (List.map (fun (a, b, c, d, e) -> Printf.sprintf "w%d..%d h%d..%d a%.1f" a b c d e) l))
    gen

let prop_builder_disjoint =
  QCheck.Test.make ~name:"builder keeps boxes disjoint under random stores" ~count:200
    arb_boxes (fun boxes ->
      let b = Builder.create circuit1 in
      List.iter
        (fun (wlo, whi, hlo, hhi, avg) ->
          ignore
            (Builder.resolve_and_store b
               (stored1 ~avg ~best:(avg /. 2.0) ~w:(iv wlo whi) ~h:(iv hlo hhi) ())))
        boxes;
      Builder.boxes_disjoint b && Builder.rows_consistent b && Builder.n_live b >= 1)

let prop_builder_coverage_bounded =
  QCheck.Test.make ~name:"builder coverage stays in [0,1]" ~count:100 arb_boxes
    (fun boxes ->
      let b = Builder.create circuit1 in
      List.iter
        (fun (wlo, whi, hlo, hhi, avg) ->
          ignore
            (Builder.resolve_and_store b
               (stored1 ~avg ~best:(avg /. 2.0) ~w:(iv wlo whi) ~h:(iv hlo hhi) ())))
        boxes;
      let c = Builder.coverage b in
      c >= 0.0 && c <= 1.0 +. 1e-9)

(* Structure: compile + query *)

let build_structure boxes =
  let b = Builder.create circuit1 in
  List.iter
    (fun (wlo, whi, hlo, hhi, avg) ->
      ignore
        (Builder.resolve_and_store b
           (stored1 ~avg ~best:(avg /. 2.0) ~w:(iv wlo whi) ~h:(iv hlo hhi) ())))
    boxes;
  Structure.compile b

let test_structure_query_hit () =
  let s = build_structure [ (1, 10, 1, 10, 5.0); (20, 30, 1, 10, 7.0) ] in
  check_int "two placements" 2 (Structure.n_placements s);
  (match Structure.query s (Dims.of_pairs [| (5, 5) |]) with
  | Structure.Stored_placement _, st ->
    check_bool "box contains query" true (Dimbox.contains st.Stored.box (Dims.of_pairs [| (5, 5) |]))
  | (Structure.Fallback | Structure.Out_of_domain), _ -> Alcotest.fail "expected a stored hit");
  match Structure.query s (Dims.of_pairs [| (25, 5) |]) with
  | Structure.Stored_placement _, st ->
    check_bool "second box" true (Dimbox.contains st.Stored.box (Dims.of_pairs [| (25, 5) |]))
  | (Structure.Fallback | Structure.Out_of_domain), _ -> Alcotest.fail "expected a stored hit"

let test_structure_query_miss_fallback () =
  let s = build_structure [ (1, 10, 1, 10, 5.0) ] in
  match Structure.query s (Dims.of_pairs [| (50, 50) |]) with
  | Structure.Fallback, st ->
    check_bool "fallback is the backup" true (st == Structure.backup s);
    check_bool "fallback is the best-cost placement" true (st.Stored.best_cost <= 5.0)
  | (Structure.Stored_placement _ | Structure.Out_of_domain), _ -> Alcotest.fail "expected fallback"

let test_structure_fallback_is_lowest_best_cost () =
  let s = build_structure [ (1, 10, 1, 10, 9.0); (20, 30, 1, 10, 3.0); (40, 50, 1, 10, 7.0) ] in
  let fb = Structure.backup s in
  Array.iter
    (fun st -> check_bool "fallback minimal" true (fb.Stored.best_cost <= st.Stored.best_cost))
    (Structure.placements s)

let test_structure_compile_empty_fails () =
  let b = Builder.create circuit1 in
  Alcotest.check_raises "empty" (Invalid_argument "Structure.compile: empty builder")
    (fun () -> ignore (Structure.compile b))

let test_structure_instantiate_legal_on_hit () =
  let s = build_structure [ (1, 10, 1, 10, 5.0) ] in
  let rects = Structure.instantiate s (Dims.of_pairs [| (5, 5) |]) in
  check_bool "requested dims used" true (rects.(0).Rect.w = 5 && rects.(0).Rect.h = 5)

let prop_query_matches_linear_oracle =
  QCheck.Test.make ~name:"compiled query equals linear scan" ~count:200
    (QCheck.pair arb_boxes (QCheck.pair (QCheck.int_range 1 100) (QCheck.int_range 1 100)))
    (fun (boxes, (w, h)) ->
      let s = build_structure boxes in
      let dims = Dims.of_pairs [| (w, h) |] in
      let a1, s1 = Structure.query s dims in
      let a2, s2 = Structure.query_linear s dims in
      a1 = a2 && s1 == s2)

(* Generator: end-to-end on small circuits *)

let generated =
  lazy (Generator.generate ~config:Generator.fast_config Benchmarks.circ01)

let test_generator_stats () =
  let structure, stats = Lazy.force generated in
  check_bool "stored some placements" true (stats.Generator.placements_stored >= 1);
  check_int "matches structure" (Structure.n_placements structure)
    stats.Generator.placements_stored;
  check_bool "coverage in range" true
    (stats.Generator.coverage >= 0.0 && stats.Generator.coverage <= 1.0);
  check_bool "steps counted" true (stats.Generator.explorer_steps >= 1)

let test_generator_deterministic () =
  let s1, st1 = Generator.generate ~config:Generator.fast_config Benchmarks.circ01 in
  let s2, st2 = Generator.generate ~config:Generator.fast_config Benchmarks.circ01 in
  check_int "same count" (Structure.n_placements s1) (Structure.n_placements s2);
  Alcotest.(check (float 1e-12)) "same coverage" st1.Generator.coverage st2.Generator.coverage

let test_generator_seed_changes_result () =
  let cfg = { Generator.fast_config with seed = 99 } in
  let s1, _ = Lazy.force generated in
  let s2, _ = Generator.generate ~config:cfg Benchmarks.circ01 in
  (* different seeds explore different placements; counts rarely equal *)
  let p1 = (Structure.placements s1).(0) and p2 = (Structure.placements s2).(0) in
  check_bool "different first placement or count" true
    (Structure.n_placements s1 <> Structure.n_placements s2
    || not (Placement.equal p1.Stored.placement p2.Stored.placement))

let test_generator_hits_instantiate_legally () =
  let structure, _ = Lazy.force generated in
  let c = Benchmarks.circ01 in
  let die_w, die_h = Structure.die structure in
  Array.iter
    (fun st ->
      (* querying at a stored placement's best dims must hit a stored
         placement (not necessarily the same one) and yield an
         overlap-free floorplan at exactly those dims; ordinary hits
         are fully legal (inside the die) *)
      match Structure.query structure st.Stored.best_dims with
      | Structure.Stored_placement _, hit ->
        let rects = Stored.instantiate_auto hit st.Stored.best_dims in
        check_bool "overlap-free" true (Rect.any_overlap rects = None);
        if not hit.Stored.template_like then
          check_bool "legal" true (Mps_cost.Cost.is_legal ~die_w ~die_h rects)
      | (Structure.Fallback | Structure.Out_of_domain), _ -> Alcotest.fail "best dims must be covered")
    (Structure.placements structure);
  check_bool "circuit preserved" true (Structure.circuit structure == c)

let test_generator_structure_disjoint () =
  let structure, _ = Lazy.force generated in
  let ps = Structure.placements structure in
  let n = Array.length ps in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      check_bool "disjoint boxes" true
        (not (Dimbox.overlaps ps.(i).Stored.box ps.(j).Stored.box))
    done
  done

let test_paper_literal_mode () =
  (* The configuration matching the paper's literal algorithm: random
     initial placement, no coordinate refinement.  All structural
     invariants must still hold. *)
  let config =
    {
      Generator.fast_config with
      Generator.seed_walk_with_backup = false;
      refine_iterations = 0;
    }
  in
  let structure, stats = Generator.generate ~config Benchmarks.circ01 in
  check_bool "stored at least the backup" true (Structure.n_placements structure >= 1);
  check_bool "stats sane" true (stats.Generator.explorer_steps >= 1);
  let ps = Structure.placements structure in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j then
            check_bool "disjoint" true (not (Dimbox.overlaps a.Stored.box b.Stored.box)))
        ps)
    ps

let test_random_explorer_runs () =
  let structure, stats =
    Generator.random_explorer ~config:Generator.fast_config Benchmarks.circ01
  in
  check_bool "stored some" true (Structure.n_placements structure >= 1);
  check_bool "coverage sane" true (stats.Generator.coverage >= 0.0)

let suite =
  [
    ("stored: validation", `Quick, test_stored_validation);
    ("stored: with_box clamps best dims", `Quick, test_stored_with_box_clamps_best);
    ("stored: clamped instantiation", `Quick, test_stored_instantiate_clamped_legal);
    ("bdio: cost-ratio shrink", `Quick, test_shrink_cost_ratio);
    ("bdio: farther average shrinks tighter", `Quick, test_shrink_tighter_when_avg_far);
    ("bdio: shrink rules", `Quick, test_shrink_rules);
    ("bdio: optimize postconditions", `Quick, test_bdio_optimize);
    ("bdio: deterministic", `Quick, test_bdio_deterministic);
    ("resolve: shrink to one side", `Quick, test_shrink_against_side);
    ("resolve: fork on strict containment", `Quick, test_shrink_against_fork);
    ("resolve: drop when contained everywhere", `Quick, test_shrink_against_drop);
    ("resolve: smallest-overlap axis is cut", `Quick, test_shrink_against_picks_smallest_overlap);
    ("resolve: disjoint boxes rejected", `Quick, test_shrink_against_disjoint_raises);
    ("builder: first store", `Quick, test_store_first);
    ("builder: disjoint placements coexist", `Quick, test_store_disjoint_pair);
    ("builder: higher-avg candidate is shrunk", `Quick, test_store_overlap_candidate_loses);
    ("builder: higher-avg stored is shrunk", `Quick, test_store_overlap_stored_loses);
    ("builder: fully-covered candidate dropped", `Quick, test_store_candidate_dropped);
    ("builder: stored placement forked", `Quick, test_store_stored_fork);
    ("builder: overlapping range query", `Quick, test_overlapping_query);
    ("builder: coverage sums disjoint boxes", `Quick, test_coverage_sums);
    ("structure: query hits", `Quick, test_structure_query_hit);
    ("structure: query miss falls back", `Quick, test_structure_query_miss_fallback);
    ("structure: fallback is best placement", `Quick, test_structure_fallback_is_lowest_best_cost);
    ("structure: empty compile fails", `Quick, test_structure_compile_empty_fails);
    ("structure: instantiation uses requested dims", `Quick, test_structure_instantiate_legal_on_hit);
    ("generator: stats", `Quick, test_generator_stats);
    ("generator: deterministic per seed", `Quick, test_generator_deterministic);
    ("generator: seed sensitivity", `Quick, test_generator_seed_changes_result);
    ("generator: covered queries are legal", `Quick, test_generator_hits_instantiate_legally);
    ("generator: compiled boxes disjoint", `Quick, test_generator_structure_disjoint);
    ("generator: paper-literal mode invariants", `Quick, test_paper_literal_mode);
    ("generator: random explorer ablation", `Quick, test_random_explorer_runs);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_builder_disjoint; prop_builder_coverage_bounded; prop_query_matches_linear_oracle ]

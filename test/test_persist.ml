(* Persistence-layer contracts that sit below the codec: atomic_write
   under concurrent writers (the daemon's stats, the bench reports and
   a repair run may all write at once). *)

open Mps_core

let check_bool = Alcotest.(check bool)

let with_tmp_dir f =
  let dir = Filename.temp_file "mps_persist" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* Four domains hammer the same destination.  Whatever interleaving
   the scheduler picks, the destination must always hold one writer's
   complete document (temp names are unique per writer, so no writer
   can tear another's staging file), and no temp litter survives. *)
let concurrent_writers () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "doc.txt" in
      let contents =
        Array.init 4 (fun i -> String.make 8192 (Char.chr (Char.code 'a' + i)))
      in
      let domains =
        Array.map
          (fun c ->
            Domain.spawn (fun () ->
                for _ = 1 to 25 do
                  Persist.atomic_write ~path c
                done))
          contents
      in
      Array.iter Domain.join domains;
      let final = Persist.read_file ~path in
      check_bool "destination is one writer's complete document" true
        (Array.exists (fun c -> c = final) contents);
      let litter =
        Sys.readdir dir |> Array.to_list |> List.filter (fun f -> f <> "doc.txt")
      in
      check_bool
        (Printf.sprintf "no staging litter (%s)" (String.concat ", " litter))
        true (litter = []))

(* Repeated writes from one thread also leave no litter and always
   land the latest content. *)
let sequential_overwrite () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "doc.txt" in
      for i = 1 to 10 do
        Persist.atomic_write ~path (Printf.sprintf "generation %d\n" i)
      done;
      check_bool "latest write wins" true
        (Persist.read_file ~path = "generation 10\n");
      check_bool "no staging litter" true
        (Sys.readdir dir = [| "doc.txt" |]))

let suite =
  [
    Alcotest.test_case "atomic_write survives concurrent writers" `Quick
      concurrent_writers;
    Alcotest.test_case "sequential overwrites leave no litter" `Quick
      sequential_overwrite;
  ]

(* The MPSZ zero-copy container (Zcodec) and the compaction pass
   (Compact).

   The format stores the compiled engine verbatim, so the property that
   matters is bit-identical answers: an engine served straight off the
   mapped words must agree with the heap engine and the linear oracle
   on every probe, and instantiation must produce the same floorplans.
   Damage must surface as a typed [Corrupt] — never a crash, never a
   silently wrong answer on a verified load. *)

open Mps_rng
open Mps_geometry
open Mps_netlist
open Mps_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tiny_config =
  {
    Generator.fast_config with
    Generator.explorer_iterations = 8;
    bdio = { Generator.fast_config.Generator.bdio with Bdio.iterations = 60 };
    max_placements = 25;
    backup_iterations = 300;
  }

let structures =
  lazy
    (List.map
       (fun c -> (c, fst (Generator.generate ~config:tiny_config c)))
       Benchmarks.all)

let for_all f () = List.iter (fun (c, s) -> f c s) (Lazy.force structures)

(* Same mixed-regime probe generator as the engine suite: uniform
   in-domain vectors, past-the-max out-of-domain vectors, and jitter
   around stored best vectors (the sizing-loop shape). *)
let probe rng structure stored =
  let circuit = Structure.circuit structure in
  let bounds = Circuit.dim_bounds circuit in
  let base = Dimbox.random_dims rng bounds in
  match Rng.int rng 4 with
  | 0 | 1 -> base
  | 2 ->
    let i = Rng.int rng (Dims.n_blocks base) in
    if Rng.int rng 2 = 0 then
      Dims.set_width base i (Interval.hi (Dimbox.w_interval bounds i) + 1 + Rng.int rng 8)
    else
      Dims.set_height base i
        (Interval.hi (Dimbox.h_interval bounds i) + 1 + Rng.int rng 8)
  | _ ->
    let s : Stored.t = stored.(Rng.int rng (Array.length stored)) in
    let d = ref s.Stored.best_dims in
    for _ = 1 to 2 do
      let i = Rng.int rng (Dims.n_blocks !d) in
      let bump = Rng.int_in rng (-2) 2 in
      d :=
        (if Rng.int rng 2 = 0 then Dims.set_width !d i (max 1 (Dims.width !d i + bump))
         else Dims.set_height !d i (max 1 (Dims.height !d i + bump)))
    done;
    !d

let save_tmp structure =
  let path = Filename.temp_file "mps_zcodec" ".mpsz" in
  Zcodec.save structure ~path;
  path

let load_view ?verify circuit path =
  try Zcodec.load ?verify ~circuit path
  with Zcodec.Error e -> Alcotest.failf "load: %s" (Zcodec.error_to_string e)

let rects_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun (r1 : Rect.t) (r2 : Rect.t) ->
         r1.Rect.x = r2.Rect.x && r1.Rect.y = r2.Rect.y && r1.Rect.w = r2.Rect.w
         && r1.Rect.h = r2.Rect.h)
       a b

(* Tentpole property: the mapped engine answers and instantiates
   bit-identically to the heap engine and the linear oracle on 10k
   mixed probes per circuit. *)
let test_mapped_engine_matches_oracle c structure =
  let heap = Structure.Engine.create structure in
  let path = save_tmp structure in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let view = load_view c path in
      let mapped = view.Zcodec.engine in
      let s_heap = Structure.Engine.new_session () in
      let s_map = Structure.Engine.new_session () in
      let stored = Structure.placements structure in
      let rng = Rng.create ~seed:29 in
      for k = 1 to 10_000 do
        let dims = probe rng structure stored in
        let a_lin, _ = Structure.query_linear structure dims in
        let a_heap = Structure.Engine.query_id heap s_heap dims in
        let a_map = Structure.Engine.query_id mapped s_map dims in
        if a_heap <> a_map then
          Alcotest.failf "%s probe %d: heap engine %d, mapped engine %d"
            c.Circuit.name k a_heap a_map;
        (match (a_lin, a_map) with
        | Structure.Stored_placement i, j when i <> j ->
          Alcotest.failf "%s probe %d: linear %d, mapped %d" c.Circuit.name k i j
        | Structure.Fallback, j when j <> -1 ->
          Alcotest.failf "%s probe %d: linear fallback, mapped %d" c.Circuit.name k j
        | Structure.Out_of_domain, j when j <> -2 ->
          Alcotest.failf "%s probe %d: linear out-of-domain, mapped %d" c.Circuit.name
            k j
        | _ -> ());
        if k mod 7 = 0 then
          let r_heap = Structure.Engine.instantiate heap s_heap dims in
          let r_map = Structure.Engine.instantiate mapped s_map dims in
          if not (rects_equal r_heap r_map) then
            Alcotest.failf "%s probe %d: instantiation differs" c.Circuit.name k
      done)

(* [of_string] must parse the writer's bytes identically to a mapped
   load, and the view must report honest size accounting. *)
let test_of_string_agrees c structure =
  let raw = Zcodec.to_string structure in
  check_bool (c.Circuit.name ^ ": magic sniffs") true (Zcodec.is_magic raw);
  let view = Zcodec.of_string ~circuit:c raw in
  check_int (c.Circuit.name ^ ": bytes") (String.length raw) view.Zcodec.bytes;
  check_int
    (c.Circuit.name ^ ": stored count")
    (Array.length (Structure.placements structure))
    view.Zcodec.n_stored;
  let last = List.nth view.Zcodec.sections (List.length view.Zcodec.sections - 1) in
  check_int
    (c.Circuit.name ^ ": sections end at the file end")
    (String.length raw / 8)
    (last.Zcodec.off_words + last.Zcodec.len_words);
  check_bool (c.Circuit.name ^ ": pool dedupes template pieces") true
    (view.Zcodec.n_pool <= view.Zcodec.n_stored + 1)

(* The mapped engine materializes the full heap structure on demand,
   and that structure round-trips through the text codec. *)
let test_materialize_structure c structure =
  let raw = Zcodec.to_string structure in
  let view = Zcodec.of_string ~circuit:c raw in
  let s2 = Structure.Engine.structure view.Zcodec.engine in
  check_int
    (c.Circuit.name ^ ": placement count survives")
    (Structure.n_placements structure)
    (Structure.n_placements s2);
  check_bool (c.Circuit.name ^ ": text round-trip agrees") true
    (Codec.to_string s2 = Codec.to_string structure)

(* Every single-bit flip anywhere in the container must be caught by a
   verified load (or be semantically invisible: bit 63 of a word never
   carries information).  No flip may crash. *)
let test_flips_detected () =
  let _, structure = List.hd (Lazy.force structures) in
  let circuit = Structure.circuit structure in
  let raw = Zcodec.to_string structure in
  let rng = Rng.create ~seed:41 in
  let flips = ref 0 and caught = ref 0 in
  for _ = 1 to 200 do
    let pos = Rng.int rng (String.length raw) in
    let bit = Rng.int rng 8 in
    if not (bit = 7 && pos mod 8 = 7) then begin
      (* skip bit 63 of a word: dropped by the int lens, semantically void *)
      incr flips;
      let b = Bytes.of_string raw in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      match Zcodec.of_string ~circuit (Bytes.to_string b) with
      | exception Zcodec.Error (Zcodec.Corrupt _) -> incr caught
      | exception Zcodec.Error (Zcodec.Circuit_mismatch _) ->
        (* a flip inside the stored identity reads as another circuit *)
        incr caught
      | _view -> ()
    end
  done;
  check_int "every informative flip detected" !flips !caught

let test_wrong_circuit_rejected () =
  let all = Lazy.force structures in
  let _, s1 = List.hd all in
  let other =
    List.find (fun c -> c.Circuit.name <> (Structure.circuit s1).Circuit.name)
      Benchmarks.all
  in
  let raw = Zcodec.to_string s1 in
  match Zcodec.of_string ~circuit:other raw with
  | exception Zcodec.Error (Zcodec.Circuit_mismatch _) -> ()
  | exception e -> Alcotest.failf "expected Circuit_mismatch, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "wrong circuit accepted"

let test_load_missing_is_io_error () =
  let c = List.hd Benchmarks.all in
  match Zcodec.load ~circuit:c "/nonexistent/dir/x.mpsz" with
  | exception Zcodec.Error (Zcodec.Io_error _) -> ()
  | exception e -> Alcotest.failf "expected Io_error, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "missing file loaded"

(* Salvage: wreck every engine section; the placement records must
   still come back intact. *)
let test_salvage_survives_engine_damage () =
  let _, structure = List.hd (Lazy.force structures) in
  let circuit = Structure.circuit structure in
  let raw = Zcodec.to_string structure in
  let view = Zcodec.of_string ~circuit raw in
  let b = Bytes.of_string raw in
  List.iter
    (fun s ->
      if s.Zcodec.tag <> "POOL" && s.Zcodec.tag <> "PLCT" then
        for wi = s.Zcodec.off_words to s.Zcodec.off_words + s.Zcodec.len_words - 1 do
          Bytes.set_int64_le b (wi * 8) 0x0123_4567_89AB_CDEFL
        done)
    view.Zcodec.sections;
  let damaged = Bytes.to_string b in
  (* strict load refuses *)
  (match Zcodec.of_string ~circuit damaged with
  | exception Zcodec.Error (Zcodec.Corrupt _) -> ()
  | _ -> Alcotest.fail "damaged container loaded strictly");
  (* salvage recovers every record *)
  let path = Filename.temp_file "mps_zsalvage" ".mpsz" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc damaged);
      let w, bytes = Persist.map_words ~path in
      match Zcodec.salvage_parts ~circuit w ~bytes with
      | Error e -> Alcotest.failf "salvage failed: %s" (Zcodec.error_to_string e)
      | Ok r ->
        check_int "all records recovered" view.Zcodec.n_stored
          (List.length r.Zcodec.r_stored);
        check_bool "backup recovered" true (r.Zcodec.r_backup <> None);
        check_bool "crc failure reported" false r.Zcodec.r_crc_ok)

(* Compaction: audit-clean, monotone on size, idempotent, and the
   compacted container still answers exactly like its own heap
   engine. *)
let compacted =
  lazy
    (List.map
       (fun (c, s) -> (c, s, Compact.run s))
       (Lazy.force structures))

let test_compact_clean_and_smaller () =
  let any_rewrite = ref 0 in
  List.iter
    (fun (c, s, (cs, stats)) ->
      let name = c.Circuit.name in
      check_bool (name ^ ": not reverted") false stats.Compact.reverted;
      check_bool (name ^ ": records shrink or hold") true
        (stats.Compact.records_after <= stats.Compact.records_before);
      check_bool (name ^ ": bytes shrink or hold") true
        (stats.Compact.bytes_after <= stats.Compact.bytes_before);
      check_int
        (name ^ ": records_after matches the structure")
        (Structure.n_placements cs)
        stats.Compact.records_after;
      any_rewrite :=
        !any_rewrite + stats.Compact.merged + stats.Compact.absorbed
        + stats.Compact.dropped;
      check_bool (name ^ ": compacted audit is clean") true
        (Audit.clean (Audit.run cs));
      ignore s)
    (Lazy.force compacted);
  check_bool "compaction found work on the benchmark set" true (!any_rewrite > 0)

let test_compact_idempotent () =
  List.iter
    (fun (c, _, (cs, _)) ->
      let again, stats2 = Compact.run cs in
      check_int
        (c.Circuit.name ^ ": second pass rewrites nothing")
        0
        (stats2.Compact.merged + stats2.Compact.absorbed + stats2.Compact.dropped);
      check_bool (c.Circuit.name ^ ": fixpoint is byte-stable") true
        (Zcodec.to_string again = Zcodec.to_string cs);
      check_bool (c.Circuit.name ^ ": packed fixpoint is byte-stable") true
        (Zcodec.to_string ~packed:true again = Zcodec.to_string ~packed:true cs))
    (Lazy.force compacted)

let test_compact_then_map_parity () =
  List.iter
    (fun (c, _, (cs, _)) ->
      let heap = Structure.Engine.create cs in
      let view = Zcodec.of_string ~circuit:c (Zcodec.to_string cs) in
      let s_heap = Structure.Engine.new_session () in
      let s_map = Structure.Engine.new_session () in
      let stored = Structure.placements cs in
      let rng = Rng.create ~seed:53 in
      for k = 1 to 2_000 do
        let dims = probe rng cs stored in
        let a = Structure.Engine.query_id heap s_heap dims in
        let b = Structure.Engine.query_id view.Zcodec.engine s_map dims in
        if a <> b then
          Alcotest.failf "%s probe %d: heap %d, mapped %d" c.Circuit.name k a b
      done)
    (Lazy.force compacted)

(* The half-packed archival layout (what compact writes) must be
   genuinely smaller, decode to the bit-identical structure, and
   answer exactly like the heap engine. *)
let test_packed_layout_parity c structure =
  let plain = Zcodec.to_string structure in
  let raw = Zcodec.to_string ~packed:true structure in
  check_bool (c.Circuit.name ^ ": packed is smaller") true
    (String.length raw < String.length plain);
  check_bool (c.Circuit.name ^ ": packed magic sniffs") true (Zcodec.is_magic raw);
  let view = Zcodec.of_string ~circuit:c raw in
  let tags = List.map (fun s -> s.Zcodec.tag) view.Zcodec.sections in
  check_bool (c.Circuit.name ^ ": packed tags present") true
    (List.mem "POLH" tags && List.mem "PLCH" tags);
  let s2 = Structure.Engine.structure view.Zcodec.engine in
  check_bool (c.Circuit.name ^ ": packed decodes bit-identical") true
    (Codec.to_string s2 = Codec.to_string structure);
  let heap = Structure.Engine.create structure in
  let s_heap = Structure.Engine.new_session () in
  let s_map = Structure.Engine.new_session () in
  let stored = Structure.placements structure in
  let rng = Rng.create ~seed:61 in
  for k = 1 to 2_000 do
    let dims = probe rng structure stored in
    let a = Structure.Engine.query_id heap s_heap dims in
    let b = Structure.Engine.query_id view.Zcodec.engine s_map dims in
    if a <> b then
      Alcotest.failf "%s probe %d: heap %d, packed-mapped %d" c.Circuit.name k a b
  done

(* Packed containers salvage like plain ones, and every informative
   bit flip is still caught by a verified parse. *)
let test_packed_salvage_and_flips () =
  let _, structure = List.hd (Lazy.force structures) in
  let circuit = Structure.circuit structure in
  let raw = Zcodec.to_string ~packed:true structure in
  let view = Zcodec.of_string ~circuit raw in
  (match
     Zcodec.salvage_parts ~circuit
       (Zcodec.words_of_string raw)
       ~bytes:(String.length raw)
   with
  | Error e -> Alcotest.failf "packed salvage: %s" (Zcodec.error_to_string e)
  | Ok r ->
    check_int "packed salvage recovers all" view.Zcodec.n_stored
      (List.length r.Zcodec.r_stored);
    check_bool "packed salvage backup" true (r.Zcodec.r_backup <> None);
    check_bool "packed salvage crc ok" true r.Zcodec.r_crc_ok);
  let rng = Rng.create ~seed:43 in
  let flips = ref 0 and caught = ref 0 in
  for _ = 1 to 120 do
    let pos = Rng.int rng (String.length raw) in
    let bit = Rng.int rng 8 in
    if not (bit = 7 && pos mod 8 = 7) then begin
      incr flips;
      let b = Bytes.of_string raw in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      match Zcodec.of_string ~circuit (Bytes.to_string b) with
      | exception Zcodec.Error _ -> incr caught
      | _ -> ()
    end
  done;
  check_int "every informative flip detected (packed)" !flips !caught

(* The text codec must sniff the binary magic and route MPSZ files
   through Zcodec — strict load and salvage both — and reject unknown
   magic with one clean line, not a parse backtrace. *)
let test_codec_routes_mpsz () =
  let _, structure = List.hd (Lazy.force structures) in
  let circuit = Structure.circuit structure in
  let path = Filename.temp_file "mps_route" ".mpsz" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Zcodec.save structure ~path;
      let s2 = Codec.load ~circuit ~path in
      check_bool "strict load routes and agrees" true
        (Codec.to_string s2 = Codec.to_string structure);
      match Codec.load_salvage ~circuit ~path with
      | Error e -> Alcotest.failf "salvage: %s" (Codec.error_to_string e)
      | Ok sv ->
        check_bool "container checksums verified" true sv.Codec.checksum_ok;
        check_int "all records recovered"
          (Array.length (Structure.placements structure))
          sv.Codec.recovered)

let test_unknown_magic_clean_error () =
  let c = List.hd Benchmarks.all in
  let garbage = "\x7fELF\x02\x01\x01\x00 definitely not a structure\xff\xfe" in
  match Codec.of_string ~circuit:c garbage with
  | exception Codec.Error (Codec.Corrupt { reason; _ }) ->
    check_bool "reason is one short clean line" true
      ((not (String.contains reason '\n'))
      && String.length reason < 120
      && String.for_all (fun ch -> ch >= ' ' && ch < '\x7f') reason)
  | exception e -> Alcotest.failf "expected Corrupt, got %s" (Printexc.to_string e)
  | _ -> Alcotest.fail "garbage accepted"

let suite =
  [
    ("all circuits: mapped engine equals heap engine and oracle on 10k probes",
     `Slow, for_all test_mapped_engine_matches_oracle);
    ("all circuits: compact is clean and never grows", `Slow,
     test_compact_clean_and_smaller);
    ("all circuits: compact is idempotent", `Slow, test_compact_idempotent);
    ("all circuits: compacted container keeps query parity", `Slow,
     test_compact_then_map_parity);
    ("all circuits: of_string agrees with load", `Slow, for_all test_of_string_agrees);
    ("all circuits: materialized structure round-trips", `Slow,
     for_all test_materialize_structure);
    ("all circuits: packed layout keeps parity and shrinks", `Slow,
     for_all test_packed_layout_parity);
    ("packed container salvages and detects flips", `Slow,
     test_packed_salvage_and_flips);
    ("random flips are detected, never crash", `Slow, test_flips_detected);
    ("wrong circuit rejected", `Quick, test_wrong_circuit_rejected);
    ("missing file is Io_error", `Quick, test_load_missing_is_io_error);
    ("salvage survives engine-section damage", `Quick, test_salvage_survives_engine_damage);
    ("text codec routes MPSZ files", `Quick, test_codec_routes_mpsz);
    ("unknown magic fails with one clean line", `Quick, test_unknown_magic_clean_error);
  ]

(* Chaos suite: seeded fault injection over the persistence stack.

   Every scenario is reproducible from a single integer seed.  The base
   seed comes from the MPS_CHAOS_SEED environment variable when set (CI
   derives it from the date so the fleet walks the seed space), default
   1.  The invariant under test, for every injected fault:

   - no exception other than the typed [Codec.Error] / [Sys_error]
     escapes the persistence API;
   - after a faulted save, a fault-free load finds a complete document
     — bit-exact the old or the new serialization, never a torn mix;
   - a document corrupted on disk either salvages into a structure
     whose sampled queries all instantiate overlap-free at quality no
     worse than the backup template, or is rejected with a typed error.
*)

open Mps_geometry
open Mps_netlist
open Mps_core
open Mps_fault

let check_bool = Alcotest.(check bool)

let base_seed =
  match Sys.getenv_opt "MPS_CHAOS_SEED" with
  | Some s -> (match int_of_string_opt (String.trim s) with Some v -> v | None -> 1)
  | None -> 1

let circuit = Benchmarks.circ01

let tiny_config =
  {
    Generator.fast_config with
    Generator.explorer_iterations = 4;
    bdio = { Bdio.default_config with Bdio.iterations = 40 };
    max_placements = 12;
    backup_iterations = 150;
    refine_iterations = 0;
  }

let structure = lazy (fst (Generator.generate ~config:tiny_config circuit))

(* A second, different structure so old and new serializations differ
   in the save-under-fault family. *)
let structure2 =
  lazy
    (fst
       (Generator.generate
          ~config:{ tiny_config with Generator.seed = tiny_config.Generator.seed + 17 }
          circuit))

let with_tmp_dir f =
  let dir = Filename.temp_file "mps_chaos" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let is_typed = function
  | Codec.Error _ | Sys_error _ -> true
  | _ -> false

(* Sampled-query legality and quality of a (salvaged) structure: every
   probe instantiates overlap-free, and the mean cost is no worse than
   answering every probe with the backup template re-pack — the §3.1.4
   quality floor. *)
let check_queries_sound tag structure =
  let c = Structure.circuit structure in
  let die_w, die_h = Structure.die structure in
  let weights = Mps_cost.Cost.default_weights in
  let bounds = Circuit.dim_bounds c in
  let rng = Mps_rng.Rng.create ~seed:99 in
  let backup = Structure.backup structure in
  let n = 64 in
  let cost_sum = ref 0.0 and floor_sum = ref 0.0 in
  for k = 1 to n do
    let dims = Dimbox.random_dims rng bounds in
    let rects = Structure.instantiate structure dims in
    check_bool
      (Printf.sprintf "%s: query %d overlap-free" tag k)
      true
      (Rect.any_overlap rects = None);
    cost_sum := !cost_sum +. Mps_cost.Cost.total ~weights c ~die_w ~die_h rects;
    let floor_rects = Stored.instantiate_repacked backup dims in
    floor_sum := !floor_sum +. Mps_cost.Cost.total ~weights c ~die_w ~die_h floor_rects
  done;
  check_bool
    (Printf.sprintf "%s: mean quality no worse than the backup template" tag)
    true
    (!cost_sum <= !floor_sum +. 1e-6)

(* Family A: faults while saving.  The destination must afterwards hold
   a complete old or complete new document. *)
let save_under_fault scenario () =
  let s = Lazy.force structure in
  let seed = (base_seed * 1000) + scenario in
  let rng = Mps_rng.Rng.create ~seed in
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "structure.mps" in
      Codec.save s ~path;
      let old_doc = Persist.read_file ~path in
      let s2 = Lazy.force structure2 in
      let new_doc = Codec.to_string s2 in
      let plan = Fault.random_save_plan rng in
      let result, _fired = Fault.with_plan plan (fun () -> Codec.save s2 ~path) in
      (match result with
      | Ok () -> ()
      | Error e ->
        check_bool
          (Printf.sprintf "seed %d: only typed errors escape save (%s)\n%s" seed
             (Printexc.to_string e) (Fault.describe plan))
          true (is_typed e));
      (* fault-free load: a complete document, bit-exact old or new *)
      let doc = Persist.read_file ~path in
      check_bool
        (Printf.sprintf "seed %d: destination is old or new, never torn\n%s" seed
           (Fault.describe plan))
        true
        (doc = old_doc || doc = new_doc);
      ignore (Codec.load ~circuit ~path))

(* Family B: faults while loading.  Only typed errors escape; the file
   itself is untouched, so a fault-free load still succeeds. *)
let load_under_fault scenario () =
  let s = Lazy.force structure in
  let seed = (base_seed * 1000) + 400 + scenario in
  let rng = Mps_rng.Rng.create ~seed in
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "structure.mps" in
      Codec.save s ~path;
      let before = Persist.read_file ~path in
      let plan = Fault.random_read_plan rng in
      let result, _fired =
        Fault.with_plan plan (fun () -> Codec.load ~circuit ~path)
      in
      (match result with
      | Ok _ -> ()
      | Error e ->
        check_bool
          (Printf.sprintf "seed %d: only typed errors escape load (%s)\n%s" seed
             (Printexc.to_string e) (Fault.describe plan))
          true (is_typed e));
      (* salvage under the same faults must also stay typed *)
      let plan2 = Fault.random_read_plan rng in
      let result2, _ =
        Fault.with_plan plan2 (fun () -> Codec.load_salvage ~circuit ~path)
      in
      (match result2 with
      | Ok (Result.Ok sv) -> check_queries_sound (Printf.sprintf "seed %d" seed) sv.Codec.structure
      | Ok (Result.Error _) -> ()
      | Error e ->
        Alcotest.failf "seed %d: salvage let %s escape\n%s" seed (Printexc.to_string e)
          (Fault.describe plan2));
      check_bool
        (Printf.sprintf "seed %d: file untouched by read faults" seed)
        true
        (Persist.read_file ~path = before))

(* Family C: bits flipped on disk inside the placement sections.  The
   strict load must refuse (checksum); salvage must hand back a
   structure that is audit-sound on the query side — quarantining what
   the flips broke — or a typed error. *)
let corruption_salvage scenario () =
  let s = Lazy.force structure in
  let seed = (base_seed * 1000) + 800 + scenario in
  let doc = Codec.to_string s in
  (* flip bits only after the "placements" line so identity survives *)
  let from =
    let needle = "\nplacements " in
    let n = String.length needle and len = String.length doc in
    let rec find i =
      if i + n > len then String.length doc / 2
      else if String.sub doc i n = needle then i + n
      else find (i + 1)
    in
    find 0
  in
  let flips = 1 + (scenario mod 24) in
  let corrupted = Fault.flip_bits ~seed ~flips ~from doc in
  if corrupted = doc then () (* flips cancelled out: nothing to test *)
  else begin
    (match Codec.of_string ~circuit corrupted with
    | _ -> Alcotest.failf "seed %d: strict load accepted flipped bits" seed
    | exception Codec.Error _ -> ()
    | exception e ->
      Alcotest.failf "seed %d: strict load let %s escape" seed (Printexc.to_string e));
    match Codec.salvage_of_string ~circuit corrupted with
    | Result.Ok sv ->
      check_bool
        (Printf.sprintf "seed %d: salvage audit has no fatal query finding" seed)
        true
        (not
           (List.exists
              (fun f ->
                f.Audit.severity = Audit.Fatal
                && (f.Audit.code = "query-overlap" || f.Audit.code = "query-exception"))
              sv.Codec.audit.Audit.findings));
      check_queries_sound (Printf.sprintf "seed %d" seed) sv.Codec.structure
    | Result.Error _ -> () (* typed rejection is an acceptable outcome *)
    | exception e ->
      Alcotest.failf "seed %d: salvage let %s escape" seed (Printexc.to_string e)
  end

(* Family D: truncation at a seeded point; salvage recovers a sound
   prefix or rejects with a typed error. *)
let truncation_salvage scenario () =
  let s = Lazy.force structure in
  let seed = (base_seed * 1000) + 1200 + scenario in
  let rng = Mps_rng.Rng.create ~seed in
  let doc = Codec.to_string s in
  let cut = Mps_rng.Rng.int rng (String.length doc) in
  let truncated = String.sub doc 0 cut in
  match Codec.salvage_of_string ~circuit truncated with
  | Result.Ok sv -> check_queries_sound (Printf.sprintf "seed %d" seed) sv.Codec.structure
  | Result.Error _ -> ()
  | exception e ->
    Alcotest.failf "seed %d: salvage let %s escape" seed (Printexc.to_string e)

(* Family E: the file is gone entirely. *)
let missing_file () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "absent.mps" in
      (match Codec.load ~circuit ~path with
      | _ -> Alcotest.fail "load of a missing file succeeded"
      | exception Codec.Error (Codec.Io_error _) -> ()
      | exception e -> Alcotest.failf "missing file let %s escape" (Printexc.to_string e));
      match Codec.load_salvage ~circuit ~path with
      | Result.Error (Codec.Io_error _) -> ()
      | Result.Error e -> Alcotest.failf "unexpected error %s" (Codec.error_to_string e)
      | Result.Ok _ -> Alcotest.fail "salvage of a missing file succeeded")

(* Query answering is total: out-of-domain vectors get the typed
   [Out_of_domain] answer and a legal backup floorplan, no exception. *)
let out_of_domain_total () =
  let s = Lazy.force structure in
  let c = Structure.circuit s in
  let huge =
    Dims.of_pairs
      (Array.init (Circuit.n_blocks c) (fun _ -> (100_000, 100_000)))
  in
  (match Structure.query s huge with
  | Structure.Out_of_domain, st ->
    check_bool "backup answers" true (st == Structure.backup s)
  | _ -> Alcotest.fail "expected Out_of_domain");
  let rects = Structure.instantiate s huge in
  check_bool "out-of-domain floorplan overlap-free" true (Rect.any_overlap rects = None)

(* Family F: faults on the MPSZ zero-copy path.  The serving pattern
   under test is the one Serve.Store runs: try the mapped container,
   and on any typed failure fall back to the text document — never a
   crash, never a silently wrong structure. *)

let save_both dir =
  let s = Lazy.force structure in
  let tpath = Filename.concat dir "structure.mps" in
  let zpath = Filename.concat dir "structure.mpsz" in
  Codec.save s ~path:tpath;
  Zcodec.save s ~path:zpath;
  (s, tpath, zpath)

let load_with_fallback ~tpath ~zpath =
  match Zcodec.load ~circuit zpath with
  | v -> `Mpsz v
  | exception Zcodec.Error _ -> `Text (Codec.load ~circuit ~path:tpath)

(* Every Map action — failed mapping, vanished file, truncated view
   (lost tail, section table and all), seeded flips, a stall — either
   yields a verified view or falls back to the text codec with only
   typed errors in between. *)
let mmap_fault_falls_back scenario () =
  let seed = (base_seed * 1000) + 1600 + scenario in
  let action =
    match scenario mod 7 with
    | 0 -> Fault.Fail
    | 1 -> Fault.Vanish
    | 2 -> Fault.Stall 0.005
    | 3 -> Fault.Truncate 0.05  (* barely a header: lost section table *)
    | 4 -> Fault.Truncate 0.8  (* lost tail: records cut mid-stride *)
    | 5 -> Fault.Corrupt 1
    | _ -> Fault.Corrupt (1 + (scenario mod 13))
  in
  let plan = [ { Fault.op = Fault.Map; skip = 0; action; seed } ] in
  with_tmp_dir (fun dir ->
      let s, tpath, zpath = save_both dir in
      let result, fired =
        Fault.with_plan plan (fun () -> load_with_fallback ~tpath ~zpath)
      in
      check_bool (Printf.sprintf "seed %d: map fault injected" seed) true (fired = 1);
      match result with
      | Error e ->
        Alcotest.failf "seed %d: %s escaped the fallback loader\n%s" seed
          (Printexc.to_string e) (Fault.describe plan)
      | Ok outcome ->
        let recovered =
          match outcome with
          | `Mpsz v ->
            (* a stall proceeds normally; seeded flips may cancel
               pairwise, and every word is CRC-covered, so a verified
               mapping is provably undamaged — the exactness check
               below confirms it.  Fail/Vanish/Truncate can never
               verify. *)
            (match action with
            | Fault.Stall _ | Fault.Corrupt _ -> ()
            | _ ->
              Alcotest.failf "seed %d: damaged mapping verified\n%s" seed
                (Fault.describe plan));
            Structure.Engine.structure v.Zcodec.engine
          | `Text t -> t
        in
        check_bool
          (Printf.sprintf "seed %d: fallback serves the exact structure" seed)
          true
          (Codec.to_string recovered = Codec.to_string s))

(* Damage landing under an already-verified mapping: queries may go
   wrong but must stay in-bounds and crash-free, and a re-verification
   of the same words must detect the damage. *)
let flip_under_active_mapping scenario () =
  let seed = (base_seed * 1000) + 2000 + scenario in
  with_tmp_dir (fun dir ->
      let _s, _tpath, zpath = save_both dir in
      let mapping = ref None in
      let io =
        {
          Persist.default_io with
          Persist.map_words =
            (fun p ->
              let w, b = Persist.default_io.Persist.map_words p in
              mapping := Some (w, b);
              (w, b));
        }
      in
      let view = Persist.with_io io (fun () -> Zcodec.load ~circuit zpath) in
      let words, bytes =
        match !mapping with Some wb -> wb | None -> Alcotest.fail "no mapping seen"
      in
      (* the mapping is private (copy-on-write): flipping words damages
         what the engine reads without touching the file *)
      Fault.flip_words ~seed ~flips:(1 + (scenario * 3)) words;
      let engine = view.Zcodec.engine in
      let session = Structure.Engine.new_session () in
      let bounds = Circuit.dim_bounds circuit in
      let rng = Mps_rng.Rng.create ~seed in
      let capacity = view.Zcodec.n_stored in
      for k = 1 to 500 do
        let dims = Dimbox.random_dims rng bounds in
        (* answers may be wrong under live corruption; they must stay
           in-bounds and exception-free *)
        let id = Structure.Engine.query_id engine session dims in
        check_bool
          (Printf.sprintf "seed %d: query %d stays in-bounds" seed k)
          true
          (id >= -2 && id < capacity)
      done;
      (* ... and the damage is detectable on the same words *)
      match Zcodec.salvage_parts ~circuit words ~bytes with
      | Result.Ok r ->
        check_bool
          (Printf.sprintf "seed %d: re-verification flags the flips" seed)
          false r.Zcodec.r_crc_ok
      | Result.Error _ -> () (* flips hit the header: typed rejection *)
      | exception e ->
        Alcotest.failf "seed %d: re-verification let %s escape" seed
          (Printexc.to_string e))

(* A container cut off inside the header or section table is a typed
   [Corrupt], not a parse backtrace. *)
let truncated_section_table scenario () =
  let seed = (base_seed * 1000) + 2400 + scenario in
  let s = Lazy.force structure in
  let raw = Zcodec.to_string s in
  let rng = Mps_rng.Rng.create ~seed in
  (* cut inside the fixed header + table region (first ~70 words) *)
  let cut = 8 * (1 + Mps_rng.Rng.int rng 70) in
  let truncated = String.sub raw 0 (min cut (String.length raw - 8)) in
  (match Zcodec.of_string ~circuit truncated with
  | _ -> Alcotest.failf "seed %d: truncated table accepted" seed
  | exception Zcodec.Error (Zcodec.Corrupt _) -> ()
  | exception e ->
    Alcotest.failf "seed %d: truncation let %s escape" seed (Printexc.to_string e));
  match
    Zcodec.salvage_parts ~circuit
      (Zcodec.words_of_string truncated)
      ~bytes:(String.length truncated)
  with
  | Result.Ok _ | Result.Error (Zcodec.Corrupt _) | Result.Error (Zcodec.Circuit_mismatch _) -> ()
  | Result.Error (Zcodec.Io_error _) -> ()
  | exception e ->
    Alcotest.failf "seed %d: salvage of truncation let %s escape" seed
      (Printexc.to_string e)

let scenarios prefix n f =
  List.init n (fun k ->
      Alcotest.test_case (Printf.sprintf "%s %02d" prefix k) `Quick (f k))

let suite =
  scenarios "chaos save" 20 save_under_fault
  @ scenarios "chaos load" 12 load_under_fault
  @ scenarios "chaos bit-flip" 16 corruption_salvage
  @ scenarios "chaos truncate" 10 truncation_salvage
  @ scenarios "chaos mmap" 14 mmap_fault_falls_back
  @ scenarios "chaos live-flip" 6 flip_under_active_mapping
  @ scenarios "chaos zheader-cut" 8 truncated_section_table
  @ [
      Alcotest.test_case "missing file is a typed error" `Quick missing_file;
      Alcotest.test_case "out-of-domain query is total" `Quick out_of_domain_total;
    ]

(* Chaos suite: seeded fault injection over the persistence stack.

   Every scenario is reproducible from a single integer seed.  The base
   seed comes from the MPS_CHAOS_SEED environment variable when set (CI
   derives it from the date so the fleet walks the seed space), default
   1.  The invariant under test, for every injected fault:

   - no exception other than the typed [Codec.Error] / [Sys_error]
     escapes the persistence API;
   - after a faulted save, a fault-free load finds a complete document
     — bit-exact the old or the new serialization, never a torn mix;
   - a document corrupted on disk either salvages into a structure
     whose sampled queries all instantiate overlap-free at quality no
     worse than the backup template, or is rejected with a typed error.
*)

open Mps_geometry
open Mps_netlist
open Mps_core
open Mps_fault

let check_bool = Alcotest.(check bool)

let base_seed =
  match Sys.getenv_opt "MPS_CHAOS_SEED" with
  | Some s -> (match int_of_string_opt (String.trim s) with Some v -> v | None -> 1)
  | None -> 1

let circuit = Benchmarks.circ01

let tiny_config =
  {
    Generator.fast_config with
    Generator.explorer_iterations = 4;
    bdio = { Bdio.default_config with Bdio.iterations = 40 };
    max_placements = 12;
    backup_iterations = 150;
    refine_iterations = 0;
  }

let structure = lazy (fst (Generator.generate ~config:tiny_config circuit))

(* A second, different structure so old and new serializations differ
   in the save-under-fault family. *)
let structure2 =
  lazy
    (fst
       (Generator.generate
          ~config:{ tiny_config with Generator.seed = tiny_config.Generator.seed + 17 }
          circuit))

let with_tmp_dir f =
  let dir = Filename.temp_file "mps_chaos" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

let is_typed = function
  | Codec.Error _ | Sys_error _ -> true
  | _ -> false

(* Sampled-query legality and quality of a (salvaged) structure: every
   probe instantiates overlap-free, and the mean cost is no worse than
   answering every probe with the backup template re-pack — the §3.1.4
   quality floor. *)
let check_queries_sound tag structure =
  let c = Structure.circuit structure in
  let die_w, die_h = Structure.die structure in
  let weights = Mps_cost.Cost.default_weights in
  let bounds = Circuit.dim_bounds c in
  let rng = Mps_rng.Rng.create ~seed:99 in
  let backup = Structure.backup structure in
  let n = 64 in
  let cost_sum = ref 0.0 and floor_sum = ref 0.0 in
  for k = 1 to n do
    let dims = Dimbox.random_dims rng bounds in
    let rects = Structure.instantiate structure dims in
    check_bool
      (Printf.sprintf "%s: query %d overlap-free" tag k)
      true
      (Rect.any_overlap rects = None);
    cost_sum := !cost_sum +. Mps_cost.Cost.total ~weights c ~die_w ~die_h rects;
    let floor_rects = Stored.instantiate_repacked backup dims in
    floor_sum := !floor_sum +. Mps_cost.Cost.total ~weights c ~die_w ~die_h floor_rects
  done;
  check_bool
    (Printf.sprintf "%s: mean quality no worse than the backup template" tag)
    true
    (!cost_sum <= !floor_sum +. 1e-6)

(* Family A: faults while saving.  The destination must afterwards hold
   a complete old or complete new document. *)
let save_under_fault scenario () =
  let s = Lazy.force structure in
  let seed = (base_seed * 1000) + scenario in
  let rng = Mps_rng.Rng.create ~seed in
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "structure.mps" in
      Codec.save s ~path;
      let old_doc = Persist.read_file ~path in
      let s2 = Lazy.force structure2 in
      let new_doc = Codec.to_string s2 in
      let plan = Fault.random_save_plan rng in
      let result, _fired = Fault.with_plan plan (fun () -> Codec.save s2 ~path) in
      (match result with
      | Ok () -> ()
      | Error e ->
        check_bool
          (Printf.sprintf "seed %d: only typed errors escape save (%s)\n%s" seed
             (Printexc.to_string e) (Fault.describe plan))
          true (is_typed e));
      (* fault-free load: a complete document, bit-exact old or new *)
      let doc = Persist.read_file ~path in
      check_bool
        (Printf.sprintf "seed %d: destination is old or new, never torn\n%s" seed
           (Fault.describe plan))
        true
        (doc = old_doc || doc = new_doc);
      ignore (Codec.load ~circuit ~path))

(* Family B: faults while loading.  Only typed errors escape; the file
   itself is untouched, so a fault-free load still succeeds. *)
let load_under_fault scenario () =
  let s = Lazy.force structure in
  let seed = (base_seed * 1000) + 400 + scenario in
  let rng = Mps_rng.Rng.create ~seed in
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "structure.mps" in
      Codec.save s ~path;
      let before = Persist.read_file ~path in
      let plan = Fault.random_read_plan rng in
      let result, _fired =
        Fault.with_plan plan (fun () -> Codec.load ~circuit ~path)
      in
      (match result with
      | Ok _ -> ()
      | Error e ->
        check_bool
          (Printf.sprintf "seed %d: only typed errors escape load (%s)\n%s" seed
             (Printexc.to_string e) (Fault.describe plan))
          true (is_typed e));
      (* salvage under the same faults must also stay typed *)
      let plan2 = Fault.random_read_plan rng in
      let result2, _ =
        Fault.with_plan plan2 (fun () -> Codec.load_salvage ~circuit ~path)
      in
      (match result2 with
      | Ok (Result.Ok sv) -> check_queries_sound (Printf.sprintf "seed %d" seed) sv.Codec.structure
      | Ok (Result.Error _) -> ()
      | Error e ->
        Alcotest.failf "seed %d: salvage let %s escape\n%s" seed (Printexc.to_string e)
          (Fault.describe plan2));
      check_bool
        (Printf.sprintf "seed %d: file untouched by read faults" seed)
        true
        (Persist.read_file ~path = before))

(* Family C: bits flipped on disk inside the placement sections.  The
   strict load must refuse (checksum); salvage must hand back a
   structure that is audit-sound on the query side — quarantining what
   the flips broke — or a typed error. *)
let corruption_salvage scenario () =
  let s = Lazy.force structure in
  let seed = (base_seed * 1000) + 800 + scenario in
  let doc = Codec.to_string s in
  (* flip bits only after the "placements" line so identity survives *)
  let from =
    let needle = "\nplacements " in
    let n = String.length needle and len = String.length doc in
    let rec find i =
      if i + n > len then String.length doc / 2
      else if String.sub doc i n = needle then i + n
      else find (i + 1)
    in
    find 0
  in
  let flips = 1 + (scenario mod 24) in
  let corrupted = Fault.flip_bits ~seed ~flips ~from doc in
  if corrupted = doc then () (* flips cancelled out: nothing to test *)
  else begin
    (match Codec.of_string ~circuit corrupted with
    | _ -> Alcotest.failf "seed %d: strict load accepted flipped bits" seed
    | exception Codec.Error _ -> ()
    | exception e ->
      Alcotest.failf "seed %d: strict load let %s escape" seed (Printexc.to_string e));
    match Codec.salvage_of_string ~circuit corrupted with
    | Result.Ok sv ->
      check_bool
        (Printf.sprintf "seed %d: salvage audit has no fatal query finding" seed)
        true
        (not
           (List.exists
              (fun f ->
                f.Audit.severity = Audit.Fatal
                && (f.Audit.code = "query-overlap" || f.Audit.code = "query-exception"))
              sv.Codec.audit.Audit.findings));
      check_queries_sound (Printf.sprintf "seed %d" seed) sv.Codec.structure
    | Result.Error _ -> () (* typed rejection is an acceptable outcome *)
    | exception e ->
      Alcotest.failf "seed %d: salvage let %s escape" seed (Printexc.to_string e)
  end

(* Family D: truncation at a seeded point; salvage recovers a sound
   prefix or rejects with a typed error. *)
let truncation_salvage scenario () =
  let s = Lazy.force structure in
  let seed = (base_seed * 1000) + 1200 + scenario in
  let rng = Mps_rng.Rng.create ~seed in
  let doc = Codec.to_string s in
  let cut = Mps_rng.Rng.int rng (String.length doc) in
  let truncated = String.sub doc 0 cut in
  match Codec.salvage_of_string ~circuit truncated with
  | Result.Ok sv -> check_queries_sound (Printf.sprintf "seed %d" seed) sv.Codec.structure
  | Result.Error _ -> ()
  | exception e ->
    Alcotest.failf "seed %d: salvage let %s escape" seed (Printexc.to_string e)

(* Family E: the file is gone entirely. *)
let missing_file () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "absent.mps" in
      (match Codec.load ~circuit ~path with
      | _ -> Alcotest.fail "load of a missing file succeeded"
      | exception Codec.Error (Codec.Io_error _) -> ()
      | exception e -> Alcotest.failf "missing file let %s escape" (Printexc.to_string e));
      match Codec.load_salvage ~circuit ~path with
      | Result.Error (Codec.Io_error _) -> ()
      | Result.Error e -> Alcotest.failf "unexpected error %s" (Codec.error_to_string e)
      | Result.Ok _ -> Alcotest.fail "salvage of a missing file succeeded")

(* Query answering is total: out-of-domain vectors get the typed
   [Out_of_domain] answer and a legal backup floorplan, no exception. *)
let out_of_domain_total () =
  let s = Lazy.force structure in
  let c = Structure.circuit s in
  let huge =
    Dims.of_pairs
      (Array.init (Circuit.n_blocks c) (fun _ -> (100_000, 100_000)))
  in
  (match Structure.query s huge with
  | Structure.Out_of_domain, st ->
    check_bool "backup answers" true (st == Structure.backup s)
  | _ -> Alcotest.fail "expected Out_of_domain");
  let rects = Structure.instantiate s huge in
  check_bool "out-of-domain floorplan overlap-free" true (Rect.any_overlap rects = None)

let scenarios prefix n f =
  List.init n (fun k ->
      Alcotest.test_case (Printf.sprintf "%s %02d" prefix k) `Quick (f k))

let suite =
  scenarios "chaos save" 20 save_under_fault
  @ scenarios "chaos load" 12 load_under_fault
  @ scenarios "chaos bit-flip" 16 corruption_salvage
  @ scenarios "chaos truncate" 10 truncation_salvage
  @ [
      Alcotest.test_case "missing file is a typed error" `Quick missing_file;
      Alcotest.test_case "out-of-domain query is total" `Quick out_of_domain_total;
    ]

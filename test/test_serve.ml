(* Contract and chaos tests for the mpsd serving stack.

   Every scenario drives the real daemon — accept loop, per-connection
   threads, store, wire protocol — over a Unix socket in a temp
   directory, with faults injected through the pluggable transport.
   The invariant mirrors the persistence chaos suite: a network fault
   surfaces as a typed client error or a flagged degraded answer,
   never as a wrong answer or an escaped exception, and a client
   retrying with backoff converges once the fault clears. *)

open Mps_geometry
open Mps_netlist
open Mps_core
open Mps_serve
open Mps_fault

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let circuit = Benchmarks.circ01
let circuit_name = "circ01"

let tiny_config =
  {
    Generator.fast_config with
    Generator.explorer_iterations = 4;
    bdio = { Bdio.default_config with Bdio.iterations = 40 };
    max_placements = 12;
    backup_iterations = 150;
    refine_iterations = 0;
  }

let structure = lazy (fst (Generator.generate ~config:tiny_config circuit))

(* Oracle: the same structure compiled in-process.  The codec
   round-trip is bit-exact, so the daemon (serving from the saved
   file) must agree with it query for query. *)
let oracle = lazy (Structure.Engine.create (Lazy.force structure))

let random_batch ~seed n =
  let rng = Mps_rng.Rng.create ~seed in
  let bounds = Circuit.dim_bounds circuit in
  Array.init n (fun _ -> Dimbox.random_dims rng bounds)

let expected_ids dims =
  let engine = Lazy.force oracle in
  let session = Structure.Engine.new_session () in
  Array.map (Structure.Engine.query_id engine session) dims

let with_tmp_dir f =
  let dir = Filename.temp_file "mps_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  (* shm sessions live in a subdirectory of the store dir, so cleanup
     must recurse *)
  let rec rm path =
    if Sys.is_directory path then begin
      Array.iter (fun name -> rm (Filename.concat path name)) (Sys.readdir path);
      Unix.rmdir path
    end
    else Sys.remove path
  in
  Fun.protect ~finally:(fun () -> rm dir) (fun () -> f dir)

(* A daemon over a fresh store in a temp dir, stopped (gracefully) and
   joined on the way out so no test leaks a thread, domain or socket.
   [container] additionally saves the MPSZ container, so answers are
   served from the mapping and shm replies carry descriptors. *)
let with_server ?config ?transport ?fault ?shm_hooks ?(save = true)
    ?(container = false) f =
  with_tmp_dir (fun dir ->
      let store = Store.create ~dir () in
      if save then
        Codec.save (Lazy.force structure) ~path:(Store.path_for store circuit_name);
      if container then
        Zcodec.save (Lazy.force structure) ~path:(Store.zpath_for store circuit_name);
      let server =
        Server.create ?config ?transport ?fault ?shm_hooks ~store
          (Server.Unix_path (Filename.concat dir "mpsd.sock"))
      in
      let th = Server.start server in
      Fun.protect
        ~finally:(fun () ->
          Server.stop server;
          Thread.join th)
        (fun () -> f server (Server.bound_addr server)))

let with_client ?transport ?shm addr f =
  let client = Client.connect ?transport ?shm addr in
  Fun.protect ~finally:(fun () -> Client.close client) (fun () -> f client)

let ok_or_fail tag = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" tag (Client.error_to_string e)

let wait_until ?(timeout = 5.0) pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Thread.delay 0.01;
      go ()
    end
  in
  go ()

let all_up h = Array.for_all (fun w -> w.Wire.w_state = Wire.W_up) h.Wire.workers

(* --- Round trips ----------------------------------------------------- *)

let round_trip () =
  with_server (fun _server addr ->
      with_client addr (fun client ->
          let dims = random_batch ~seed:11 64 in
          let ids, meta =
            ok_or_fail "query" (Client.query_ids client ~circuit:circuit_name dims)
          in
          check_bool "not degraded" false meta.Client.degraded;
          check_int "first epoch" 1 meta.Client.epoch;
          let expect = expected_ids dims in
          Array.iteri
            (fun i id -> check_int (Printf.sprintf "query %d id" i) expect.(i) id)
            ids;
          let sub = Array.sub dims 0 8 in
          let plans, _ =
            ok_or_fail "instantiate" (Client.instantiate client ~circuit:circuit_name sub)
          in
          let engine = Lazy.force oracle in
          let session = Structure.Engine.new_session () in
          Array.iteri
            (fun i rects ->
              check_bool
                (Printf.sprintf "floorplan %d overlap-free" i)
                true
                (Rect.any_overlap rects = None);
              check_bool
                (Printf.sprintf "floorplan %d matches the oracle" i)
                true
                (rects = Structure.Engine.instantiate engine session sub.(i)))
            plans))

let unknown_and_missing () =
  with_server (fun _server addr ->
      with_client addr (fun client ->
          let dims = random_batch ~seed:3 2 in
          (match Client.query_ids client ~circuit:"not a circuit" dims with
          | Error (Client.Refused (Wire.Err_unknown_circuit, _)) -> ()
          | Error e ->
            Alcotest.failf "unknown circuit: %s" (Client.error_to_string e)
          | Ok _ -> Alcotest.fail "unknown circuit was served");
          (* a Table 1 circuit whose file is absent from the store *)
          match Client.query_ids client ~circuit:"circ02" dims with
          | Error (Client.Refused (Wire.Err_store, _)) -> ()
          | Error e -> Alcotest.failf "missing file: %s" (Client.error_to_string e)
          | Ok _ -> Alcotest.fail "missing file was served"))

(* --- Raw frames: deadlines and malformed requests -------------------- *)

let connect_raw addr =
  match addr with
  | Server.Unix_path path ->
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  | Server.Tcp _ -> Alcotest.fail "raw tests use unix sockets"

(* One exchange built byte by byte, bypassing the client — how a buggy
   or adversarial peer reaches the daemon.  [build] writes the body at
   the given offset into the buffer ref and returns its length. *)
let raw_roundtrip fd ~opcode ~deadline_us ~build =
  let req_header = Wire.request_header_bytes in
  let prefix = Wire.frame_prefix_bytes in
  let outbuf = ref (Bytes.create 1024) in
  let body_len = build outbuf (prefix + req_header) in
  let b = !outbuf in
  Wire.set_u8 b prefix opcode;
  Wire.set_u32 b (prefix + 1) 7;
  Wire.set_u32 b (prefix + 5) deadline_us;
  Wire.send_frame Transport.default fd b ~payload_len:(req_header + body_len);
  let inbuf = ref (Bytes.create 1024) in
  let len =
    Wire.recv_frame Transport.default ~max_bytes:Wire.max_frame_default ~buf:inbuf fd
  in
  match Wire.status_of_int (Wire.get_u8 !inbuf ~len 0) with
  | Some status -> (status, !inbuf, len)
  | None -> Alcotest.fail "daemon replied with an unknown status byte"

let raw_open_circuit fd =
  let status, b, len =
    raw_roundtrip fd ~opcode:(Wire.opcode_to_int Wire.Open_circuit) ~deadline_us:0
      ~build:(fun buf off -> Wire.put_string16 buf off circuit_name - off)
  in
  check_bool "open circuit ok" true (status = Wire.Ok);
  let handle = Wire.get_u16 b ~len Wire.reply_header_bytes in
  let n = Wire.get_u16 b ~len (Wire.reply_header_bytes + 3) in
  (handle, n)

let build_batch ~handle ~n ~count buf off =
  let body = 6 + (count * 4 * n) in
  Wire.ensure buf (off + body);
  let b = !buf in
  Wire.set_u16 b off handle;
  Wire.set_u32 b (off + 2) count;
  let mins = Circuit.min_dims circuit in
  for i = 0 to count - 1 do
    let base = off + 6 + (i * 4 * n) in
    for j = 0 to n - 1 do
      Bytes.set_uint16_le b (base + (j * 4)) (Dims.width mins j);
      Bytes.set_uint16_le b (base + (j * 4) + 2) (Dims.height mins j)
    done
  done;
  body

let server_side_deadline () =
  with_server (fun server addr ->
      let fd = connect_raw addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let handle, n = raw_open_circuit fd in
          (* a one-microsecond budget on a 2048-query batch cannot be
             met; the daemon must say so instead of answering late *)
          let status, _, _ =
            raw_roundtrip fd ~opcode:(Wire.opcode_to_int Wire.Query_batch)
              ~deadline_us:1 ~build:(build_batch ~handle ~n ~count:2048)
          in
          check_bool "expired budget is a typed timeout" true
            (status = Wire.Err_timeout);
          check_bool "timeout counted" true ((Server.stats server).timeouts >= 1)))

let malformed_requests () =
  with_server (fun server addr ->
      let fd = connect_raw addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let handle, n = raw_open_circuit fd in
          (* unknown opcode *)
          let status, _, _ =
            raw_roundtrip fd ~opcode:99 ~deadline_us:0 ~build:(fun _ _ -> 0)
          in
          check_bool "unknown opcode rejected" true (status = Wire.Err_bad_request);
          (* count does not match the payload size *)
          let status, _, _ =
            raw_roundtrip fd ~opcode:(Wire.opcode_to_int Wire.Query_batch)
              ~deadline_us:0
              ~build:(fun buf off ->
                let body = build_batch ~handle ~n ~count:4 buf off in
                Wire.set_u32 !buf (off + 2) 64;
                body)
          in
          check_bool "mismatched count rejected" true (status = Wire.Err_bad_request);
          (* a handle this connection never opened *)
          let status, _, _ =
            raw_roundtrip fd ~opcode:(Wire.opcode_to_int Wire.Query_batch)
              ~deadline_us:0 ~build:(build_batch ~handle:999 ~n ~count:1)
          in
          check_bool "unknown handle rejected" true (status = Wire.Err_bad_request);
          (* a zero dimension on the wire *)
          let status, _, _ =
            raw_roundtrip fd ~opcode:(Wire.opcode_to_int Wire.Query_batch)
              ~deadline_us:0
              ~build:(fun buf off ->
                let body = build_batch ~handle ~n ~count:1 buf off in
                Bytes.set_uint16_le !buf (off + 6) 0;
                body)
          in
          check_bool "zero dimension rejected" true (status = Wire.Err_bad_request);
          check_bool "bad requests counted" true
            ((Server.stats server).bad_requests >= 4);
          (* the connection survived all of it *)
          let status, _, _ =
            raw_roundtrip fd ~opcode:(Wire.opcode_to_int Wire.Query_batch)
              ~deadline_us:0 ~build:(build_batch ~handle ~n ~count:2)
          in
          check_bool "connection still serves after rejects" true (status = Wire.Ok)))

(* --- Load shedding ---------------------------------------------------- *)

let shed_inflight () =
  let config = { Server.default_config with Server.max_inflight = 0 } in
  with_server ~config (fun server addr ->
      with_client addr (fun client ->
          let dims = random_batch ~seed:5 4 in
          (match Client.query_ids client ~circuit:circuit_name dims with
          | Error (Client.Refused (Wire.Err_overloaded, _) as e) ->
            check_bool "overload is retryable" true (Client.retryable e)
          | Error e -> Alcotest.failf "expected overload: %s" (Client.error_to_string e)
          | Ok _ -> Alcotest.fail "request served past the admission limit");
          check_bool "shed counted" true ((Server.stats server).overloaded >= 1)))

let shed_connections () =
  let config = { Server.default_config with Server.max_connections = 1 } in
  with_server ~config (fun server addr ->
      with_client addr (fun first ->
          let _ = ok_or_fail "first client ping" (Client.ping first) in
          with_client addr (fun second ->
              (match Client.ping second with
              | Error (Client.Refused (Wire.Err_overloaded, _)) -> ()
              | Error e ->
                Alcotest.failf "expected connection shed: %s"
                  (Client.error_to_string e)
              | Ok _ -> Alcotest.fail "second connection admitted past the limit");
              check_bool "connection shed counted" true
                ((Server.stats server).shed_connections >= 1);
              (* the first connection is unharmed *)
              let dims = random_batch ~seed:6 4 in
              let ids, _ =
                ok_or_fail "first client still served"
                  (Client.query_ids first ~circuit:circuit_name dims)
              in
              check_bool "first client answers correct" true
                (ids = expected_ids dims))))

(* --- Injected transport faults --------------------------------------- *)

let inj op skip action seed = { Fault.op; skip; action; seed }

(* Short reads and writes are healed by the framing layer: the answer
   still arrives and is still right. *)
let short_io_heals () =
  with_server (fun _server addr ->
      let plan =
        [
          inj Fault.Net_send 0 (Fault.Truncate 0.3) 1;
          inj Fault.Net_recv 1 (Fault.Truncate 0.4) 2;
        ]
      in
      let transport, fired = Fault.transport_of_plan plan in
      with_client ~transport addr (fun client ->
          let dims = random_batch ~seed:21 32 in
          let ids, _ =
            ok_or_fail "query through short io"
              (Client.query_ids client ~circuit:circuit_name dims)
          in
          check_bool "short io answers correct" true (ids = expected_ids dims);
          check_int "both injections fired" 2 (fired ())))

(* A stalled peer blows the client deadline: typed [Timed_out], and a
   retry (the stall fires once) converges on the right answer. *)
let stall_past_deadline () =
  with_server (fun _server addr ->
      let dims = random_batch ~seed:22 16 in
      let transport, fired =
        Fault.transport_of_plan [ inj Fault.Net_recv 0 (Fault.Stall 0.3) 1 ]
      in
      with_client ~transport addr (fun client ->
          (match Client.query_ids ~budget:0.05 client ~circuit:circuit_name dims with
          | Error Client.Timed_out -> ()
          | Error e -> Alcotest.failf "expected timeout: %s" (Client.error_to_string e)
          | Ok _ -> Alcotest.fail "stalled reply beat a 50 ms deadline");
          check_int "stall fired" 1 (fired ()));
      let transport, _ =
        Fault.transport_of_plan [ inj Fault.Net_recv 0 (Fault.Stall 0.3) 1 ]
      in
      with_client ~transport addr (fun client ->
          let rng = Mps_rng.Rng.create ~seed:1 in
          let ids, _ =
            ok_or_fail "retry after stall"
              (Client.with_retry ~attempts:4 ~base_delay:0.005 ~rng client (fun () ->
                   Client.query_ids ~budget:0.05 client ~circuit:circuit_name dims))
          in
          check_bool "retry converges on the right answer" true
            (ids = expected_ids dims)))

(* The peer vanishes mid-request: typed [Disconnected], and the retry
   reconnects and converges. *)
let disconnect_mid_request () =
  with_server (fun _server addr ->
      let dims = random_batch ~seed:23 16 in
      let transport, fired =
        Fault.transport_of_plan [ inj Fault.Net_recv 0 Fault.Vanish 1 ]
      in
      with_client ~transport addr (fun client ->
          (match Client.query_ids client ~circuit:circuit_name dims with
          | Error (Client.Disconnected _ as e) ->
            check_bool "disconnect is retryable" true (Client.retryable e)
          | Error e ->
            Alcotest.failf "expected disconnect: %s" (Client.error_to_string e)
          | Ok _ -> Alcotest.fail "vanished peer produced an answer");
          check_int "vanish fired" 1 (fired ());
          (* same client object: retry reconnects through the poisoned fd *)
          let rng = Mps_rng.Rng.create ~seed:2 in
          let ids, _ =
            ok_or_fail "retry after disconnect"
              (Client.with_retry ~attempts:4 ~base_delay:0.005 ~rng client (fun () ->
                   Client.query_ids client ~circuit:circuit_name dims))
          in
          check_bool "reconnect converges on the right answer" true
            (ids = expected_ids dims)))

(* A failed accept is counted and retried; the connection waiting in
   the backlog is served on the next pass. *)
let accept_failure_survived () =
  let config = { Server.default_config with Server.accept_retry_delay = 0.01 } in
  let transport, fired =
    Fault.transport_of_plan [ inj Fault.Net_accept 0 Fault.Fail 1 ]
  in
  with_server ~config ~transport (fun server addr ->
      with_client addr (fun client ->
          let dims = random_batch ~seed:24 8 in
          let ids, _ =
            ok_or_fail "served after accept failure"
              (Client.query_ids client ~circuit:circuit_name dims)
          in
          check_bool "answers correct after accept failure" true
            (ids = expected_ids dims);
          check_int "accept fault fired" 1 (fired ());
          check_bool "accept failure counted" true
            ((Server.stats server).accept_failures >= 1)))

(* --- Crash, restart, converge ---------------------------------------- *)

let crash_restart_converge () =
  with_tmp_dir (fun dir ->
      let store = Store.create ~dir () in
      let path = Store.path_for store circuit_name in
      Codec.save (Lazy.force structure) ~path;
      let sock = Filename.concat dir "mpsd.sock" in
      let server1 = Server.create ~store (Server.Unix_path sock) in
      let th1 = Server.start server1 in
      let addr = Server.bound_addr server1 in
      with_client addr (fun client ->
          let dims = random_batch ~seed:31 16 in
          let ids, _ =
            ok_or_fail "query before crash"
              (Client.query_ids client ~circuit:circuit_name dims)
          in
          check_bool "pre-crash answers correct" true (ids = expected_ids dims);
          (* the daemon dies hard, mid-conversation *)
          Server.abort server1;
          Thread.join th1;
          (match Client.query_ids client ~circuit:circuit_name dims with
          | Error e ->
            check_bool "crash surfaces as a retryable typed error" true
              (Client.retryable e)
          | Ok _ -> Alcotest.fail "query answered by a dead daemon");
          (* the store file survived the crash intact *)
          ignore (Codec.load ~circuit ~path);
          (* a restarted daemon on the same socket; the same client
             object converges through retry with backoff *)
          let server2 = Server.create ~store:(Store.create ~dir ()) (Server.Unix_path sock) in
          let th2 = Server.start server2 in
          Fun.protect
            ~finally:(fun () ->
              Server.stop server2;
              Thread.join th2)
            (fun () ->
              let rng = Mps_rng.Rng.create ~seed:3 in
              let ids, meta =
                ok_or_fail "retry against the restarted daemon"
                  (Client.with_retry ~attempts:6 ~base_delay:0.01 ~rng client (fun () ->
                       Client.query_ids client ~circuit:circuit_name dims))
              in
              check_bool "post-restart answers correct" true (ids = expected_ids dims);
              check_int "fresh process starts the epoch sequence anew" 1
                meta.Client.epoch)))

(* --- Degradation and hot reload --------------------------------------- *)

(* A truncated store file salvages; every reply is flagged degraded and
   the floorplans are still legal — degraded, never silently wrong. *)
let degraded_serving () =
  with_server ~save:false (fun server addr ->
      let store = Server.store server in
      let doc = Codec.to_string (Lazy.force structure) in
      let cut = String.length doc * 2 / 3 in
      Persist.atomic_write ~path:(Store.path_for store circuit_name)
        (String.sub doc 0 cut);
      with_client addr (fun client ->
          let dims = random_batch ~seed:41 16 in
          match Client.instantiate client ~circuit:circuit_name dims with
          | Error (Client.Refused (Wire.Err_store, _)) ->
            (* beyond salvage is an acceptable typed outcome, but then
               nothing may have been served *)
            check_int "nothing served from a rejected file" 0
              (Server.stats server).requests_served
          | Error e -> Alcotest.failf "degraded query: %s" (Client.error_to_string e)
          | Ok (plans, meta) ->
            check_bool "salvaged entry is flagged degraded" true meta.Client.degraded;
            check_bool "degraded replies counted" true
              ((Server.stats server).degraded_served >= 1);
            Array.iteri
              (fun i rects ->
                check_bool
                  (Printf.sprintf "degraded floorplan %d overlap-free" i)
                  true
                  (Rect.any_overlap rects = None))
              plans))

let hot_reload_epochs () =
  with_server (fun server addr ->
      with_client addr (fun client ->
          let dims = random_batch ~seed:42 4 in
          let _, meta =
            ok_or_fail "first query" (Client.query_ids client ~circuit:circuit_name dims)
          in
          check_int "first epoch" 1 meta.Client.epoch;
          (* a forced reload bumps the epoch with no file change *)
          let meta = ok_or_fail "reload" (Client.reload client ~circuit:circuit_name) in
          check_int "forced reload bumps the epoch" 2 meta.Client.epoch;
          (* rewriting the file (newer mtime) hot-reloads on next use *)
          let path = Store.path_for (Server.store server) circuit_name in
          Codec.save (Lazy.force structure) ~path;
          let later = Unix.gettimeofday () +. 10.0 in
          Unix.utimes path later later;
          let ids, meta =
            ok_or_fail "query after rewrite"
              (Client.query_ids client ~circuit:circuit_name dims)
          in
          check_int "mtime change hot-reloads" 3 meta.Client.epoch;
          check_bool "reloaded answers correct" true (ids = expected_ids dims)))

let idle_timeout_drops () =
  let config = { Server.default_config with Server.idle_timeout = 0.05 } in
  with_server ~config (fun _server addr ->
      with_client addr (fun client ->
          let dims = random_batch ~seed:43 4 in
          let _ = ok_or_fail "warm-up" (Client.query_ids client ~circuit:circuit_name dims) in
          Thread.delay 0.3;
          (match Client.query_ids client ~circuit:circuit_name dims with
          | Error e -> check_bool "idle drop is retryable" true (Client.retryable e)
          | Ok _ ->
            (* a race where the reply beat the drop is acceptable only
               if the daemon genuinely had not dropped us yet — but at
               6x the idle budget it must have *)
            Alcotest.fail "idle connection survived 6x the idle budget");
          (* reconnect converges *)
          let rng = Mps_rng.Rng.create ~seed:4 in
          let ids, _ =
            ok_or_fail "reconnect after idle drop"
              (Client.with_retry ~attempts:4 ~base_delay:0.005 ~rng client (fun () ->
                   Client.query_ids client ~circuit:circuit_name dims))
          in
          check_bool "post-idle answers correct" true (ids = expected_ids dims)))

(* --- Pipelining -------------------------------------------------------- *)

let pipelined_batches () =
  with_server (fun _server addr ->
      with_client addr (fun client ->
          let batches = Array.init 12 (fun i -> random_batch ~seed:(200 + i) 8) in
          let results =
            Client.query_ids_pipelined ~depth:4 client ~circuit:circuit_name batches
          in
          check_int "one result per batch" (Array.length batches)
            (Array.length results);
          Array.iteri
            (fun i r ->
              let ids, _ = ok_or_fail (Printf.sprintf "pipelined batch %d" i) r in
              check_bool
                (Printf.sprintf "pipelined batch %d matches the oracle" i)
                true
                (ids = expected_ids batches.(i)))
            results;
          check_bool "request frames actually overlapped" true
            ((Client.stats client).Client.pipelined > 0)))

(* --- Worker faults: crash isolation, supervision, hedging -------------- *)

(* A worker crash mid-request is a typed, retryable [Err_worker_lost]
   reply — never a hang or a wrong answer — and the supervised restart
   lets the same client converge. *)
let worker_crash_typed_reply () =
  let plan = [ inj Fault.Worker_crash 2 Fault.Fail 1 ] in
  let hook, fired = Fault.worker_hook_of_plan plan in
  let config = { Server.default_config with Server.restart_base_delay = 0.02 } in
  with_server ~config ~fault:hook (fun server addr ->
      with_client addr (fun client ->
          let _ = ok_or_fail "ping" (Client.ping client) in
          let dims = random_batch ~seed:61 8 in
          (* ping = request 1, open = 2, query = 3 -> the crash fires
             while the query is being served *)
          (match Client.query_ids client ~circuit:circuit_name dims with
          | Error (Client.Refused (Wire.Err_worker_lost, _) as e) ->
            check_bool "worker loss is retryable" true (Client.retryable e)
          | Error (Client.Disconnected _) ->
            (* the sever may beat the typed farewell to the socket *)
            ()
          | Error e ->
            Alcotest.failf "expected worker-lost: %s" (Client.error_to_string e)
          | Ok _ -> Alcotest.fail "crashed worker produced an answer");
          check_int "crash fired" 1 (fired ());
          check_bool "crash survives until counted" true
            (wait_until (fun () -> (Server.stats server).worker_crashes >= 1));
          let rng = Mps_rng.Rng.create ~seed:8 in
          let ids, _ =
            ok_or_fail "retry converges after the restart"
              (Client.with_retry ~attempts:8 ~base_delay:0.01 ~rng client (fun () ->
                   Client.query_ids client ~circuit:circuit_name dims))
          in
          check_bool "post-restart answers correct" true (ids = expected_ids dims);
          check_bool "worker restarted" true
            (wait_until (fun () -> (Server.stats server).worker_restarts >= 1))))

(* Kill workers under concurrent client load: no accepted connection
   is lost permanently — every client converges through typed errors
   and retry, and every answer matches the oracle. *)
let kill_worker_under_load () =
  let config =
    {
      Server.default_config with
      Server.workers = 2;
      restart_base_delay = 0.02;
      restart_max_delay = 0.1;
    }
  in
  with_server ~config (fun server addr ->
      let mismatches = Atomic.make 0 in
      let failures = Atomic.make 0 in
      let threads =
        List.init 3 (fun k ->
            Thread.create
              (fun () ->
                let client = Client.connect addr in
                let rng = Mps_rng.Rng.create ~seed:(100 + k) in
                for i = 0 to 24 do
                  let dims = random_batch ~seed:((k * 1000) + i) 8 in
                  (match
                     Client.with_retry ~attempts:8 ~base_delay:0.01 ~rng client
                       (fun () ->
                         Client.query_ids ~budget:2.0 client ~circuit:circuit_name
                           dims)
                   with
                  | Ok (ids, _) ->
                    if ids <> expected_ids dims then Atomic.incr mismatches
                  | Error _ -> Atomic.incr failures);
                  Thread.delay 0.004
                done;
                Client.close client)
              ())
      in
      Thread.delay 0.03;
      let killed1 = Server.kill_worker server 0 in
      Thread.delay 0.1;
      ignore (Server.kill_worker server 1);
      List.iter Thread.join threads;
      check_bool "first kill landed on a live worker" true killed1;
      check_int "no mismatched answers under worker kills" 0
        (Atomic.get mismatches);
      check_int "every query converged" 0 (Atomic.get failures);
      let s = Server.stats server in
      check_bool "crashes counted" true (s.worker_crashes >= 1);
      check_bool "restarts counted" true (s.worker_restarts >= 1);
      check_bool "pool recovers to fully ready" true
        (wait_until (fun () ->
             let h = Server.health server in
             h.Wire.ready && all_up h)))

(* A restart storm trips the circuit breaker: extra slots park in
   [W_disabled], slot 0 keeps serving correct answers in degraded
   single-worker mode, and the health probe says so on the wire. *)
let restart_storm_breaker () =
  let config =
    {
      Server.default_config with
      Server.workers = 2;
      restart_base_delay = 0.01;
      restart_max_delay = 0.05;
      breaker_window = 30.0;
      breaker_max_restarts = 2;
    }
  in
  with_server ~config (fun server addr ->
      let killed = ref 0 in
      let slot = ref 0 in
      let deadline = Unix.gettimeofday () +. 10.0 in
      (* alternate slots; a kill only lands on an Up worker, so poll
         through the restart windows until three crashes are in *)
      while !killed < 3 && Unix.gettimeofday () < deadline do
        if Server.kill_worker server (!slot land 1) then begin
          incr killed;
          incr slot
        end
        else Thread.delay 0.01
      done;
      check_int "three crashes injected" 3 !killed;
      check_bool "breaker tripped" true
        (wait_until (fun () -> (Server.health server).Wire.breaker));
      check_bool "trip counted" true ((Server.stats server).breaker_trips >= 1);
      check_bool "slot 1 parked, slot 0 back up" true
        (wait_until (fun () ->
             let h = Server.health server in
             h.Wire.workers.(1).Wire.w_state = Wire.W_disabled
             && h.Wire.workers.(0).Wire.w_state = Wire.W_up));
      check_bool "degraded pool is still ready" true
        (Server.health server).Wire.ready;
      with_client addr (fun client ->
          let rng = Mps_rng.Rng.create ~seed:7 in
          let dims = random_batch ~seed:77 16 in
          let ids, _ =
            ok_or_fail "served in degraded single-worker mode"
              (Client.with_retry ~attempts:6 ~base_delay:0.01 ~rng client (fun () ->
                   Client.query_ids client ~circuit:circuit_name dims))
          in
          check_bool "degraded-mode answers correct" true (ids = expected_ids dims);
          let h =
            ok_or_fail "health over the wire"
              (Client.with_retry ~attempts:6 ~base_delay:0.01 ~rng client (fun () ->
                   Client.health client))
          in
          check_bool "wire health shows the breaker" true h.Wire.breaker))

(* Readiness tracks worker state: kill one of two workers and the
   health probe (served by the survivor) stays ready while showing the
   dead slot restarting; after the backoff the slot is back up with
   its restart counted and a fresh generation epoch. *)
let readiness_flap () =
  let config =
    {
      Server.default_config with
      Server.workers = 2;
      restart_base_delay = 0.6;
      restart_max_delay = 1.0;
    }
  in
  with_server ~config (fun server addr ->
      with_client addr (fun c0 ->
          let h0 = ok_or_fail "initial health" (Client.health c0) in
          check_bool "initially ready" true h0.Wire.ready;
          check_int "two workers" 2 (Array.length h0.Wire.workers);
          check_bool "all workers up" true (all_up h0);
          check_int "one spawn per worker" 2 h0.Wire.epoch);
      check_bool "kill landed" true (Server.kill_worker server 0);
      (* a fresh connection dispatches to the survivor *)
      with_client addr (fun c1 ->
          let rng = Mps_rng.Rng.create ~seed:9 in
          let h1 =
            ok_or_fail "health during the restart window"
              (Client.with_retry ~attempts:6 ~base_delay:0.01 ~rng c1 (fun () ->
                   Client.health c1))
          in
          check_bool "still ready on the survivor" true h1.Wire.ready;
          check_bool "dead slot reported restarting" true
            (h1.Wire.workers.(0).Wire.w_state = Wire.W_restarting);
          check_bool "flaps back to all-up" true
            (wait_until (fun () ->
                 let h = Server.health server in
                 h.Wire.ready && all_up h));
          let h2 =
            ok_or_fail "health after recovery"
              (Client.with_retry ~attempts:6 ~base_delay:0.01 ~rng c1 (fun () ->
                   Client.health c1))
          in
          check_bool "all up after the flap" true (all_up h2);
          check_int "respawn bumped the supervisor epoch" 3 h2.Wire.epoch;
          check_int "restart counted in health" 1
            h2.Wire.workers.(0).Wire.w_restarts))

(* A hedged query beats a stalled worker: the primary's query wedges
   600 ms in worker A, the hedge fires at 50 ms on a second connection
   (dispatched to worker B) and wins with the right answer. *)
let hedge_beats_stalled_worker () =
  let plan = [ inj Fault.Worker_stall 1 (Fault.Stall 0.6) 1 ] in
  let hook, fired = Fault.worker_hook_of_plan plan in
  let config = { Server.default_config with Server.workers = 2 } in
  with_server ~config ~fault:hook (fun _server addr ->
      with_client addr (fun client ->
          let dims = random_batch ~seed:71 8 in
          (* open = request 1; the query (request 2) stalls *)
          let ids, _ =
            ok_or_fail "hedged query"
              (Client.hedged_query_ids ~hedge_after:0.05 client
                 ~circuit:circuit_name dims)
          in
          check_bool "hedged answers correct" true (ids = expected_ids dims);
          check_int "stall fired" 1 (fired ());
          let s = Client.stats client in
          check_int "one hedge launched" 1 s.Client.hedges;
          check_int "the hedge won" 1 s.Client.hedge_wins))

(* --- Store hot-reload race --------------------------------------------- *)

(* Concurrent forced reloads (with stalled reads widening the publish
   window) against querying threads: no thread ever sees a torn
   engine — every answer matches the oracle — and per-thread epochs
   are monotonic. *)
let store_reload_race () =
  with_tmp_dir (fun dir ->
      let store = Store.create ~dir () in
      Codec.save (Lazy.force structure) ~path:(Store.path_for store circuit_name);
      let plan = List.init 4 (fun i -> inj Fault.Read (i + 1) (Fault.Stall 0.03) 1) in
      let io, _ = Fault.io_of_plan plan in
      Persist.with_io io (fun () ->
          (* pin the initial load to epoch 1 (read occurrence 1, not
             stalled) before any contention starts *)
          (match Store.get store circuit_name with
          | Ok e -> check_int "initial epoch" 1 e.Store.epoch
          | Error e -> Alcotest.failf "initial load: %s" (Store.error_to_string e));
          let stop = Atomic.make false in
          let torn = Atomic.make 0 in
          let threads =
            List.init 3 (fun k ->
                Thread.create
                  (fun () ->
                    let dims = random_batch ~seed:(300 + k) 4 in
                    let expect = expected_ids dims in
                    let session = Structure.Engine.new_session () in
                    let last_epoch = ref 0 in
                    while not (Atomic.get stop) do
                      match Store.get store circuit_name with
                      | Error _ -> Atomic.incr torn
                      | Ok entry ->
                        if entry.Store.epoch < !last_epoch then Atomic.incr torn;
                        last_epoch := entry.Store.epoch;
                        let ids =
                          Array.map
                            (Structure.Engine.query_id entry.Store.engine session)
                            dims
                        in
                        if ids <> expect then Atomic.incr torn
                    done)
                  ())
          in
          let final = ref 0 in
          for _ = 1 to 5 do
            Thread.delay 0.01;
            match Store.reload store circuit_name with
            | Ok e -> final := e.Store.epoch
            | Error _ -> Atomic.incr torn
          done;
          Atomic.set stop true;
          List.iter Thread.join threads;
          check_int "no torn engine, failed get or epoch regression" 0
            (Atomic.get torn);
          check_int "five forced reloads landed" 6 !final))

(* --- MPSZ container preference and typed fallback ---------------------- *)

(* The store prefers the zero-copy container, serves query-identical
   answers off the mapping, falls back (typed, flagged) to the text
   document when the container is damaged, and remaps — epoch bump,
   no recompile — once the container is repaired. *)
let store_prefers_container () =
  with_tmp_dir (fun dir ->
      let store = Store.create ~dir () in
      let s = Lazy.force structure in
      let tpath = Store.path_for store circuit_name in
      let zpath = Store.zpath_for store circuit_name in
      Codec.save s ~path:tpath;
      Zcodec.save s ~path:zpath;
      let dims = random_batch ~seed:77 64 in
      let expect = expected_ids dims in
      let check_answers tag entry =
        let session = Structure.Engine.new_session () in
        let ids =
          Array.map (Structure.Engine.query_id entry.Store.engine session) dims
        in
        check_bool (tag ^ ": answers match the oracle") true (ids = expect)
      in
      (match Store.get store circuit_name with
      | Error e -> Alcotest.failf "initial get: %s" (Store.error_to_string e)
      | Ok entry ->
        check_bool "container preferred" true entry.Store.mapped;
        check_bool "loaded from the container" true (entry.Store.path = zpath);
        check_int "epoch 1" 1 entry.Store.epoch;
        check_bool "container load is not degraded" false entry.Store.degraded;
        check_answers "mapped" entry);
      (* damage the container: the store falls back to the text file *)
      let raw = Persist.read_file ~path:zpath in
      Persist.atomic_write ~path:zpath (Fault.flip_bits ~seed:5 ~flips:6 ~from:256 raw);
      (match Store.reload store circuit_name with
      | Error e -> Alcotest.failf "reload over damage: %s" (Store.error_to_string e)
      | Ok entry ->
        check_bool "fell back to the text document" false entry.Store.mapped;
        check_bool "loaded from the text path" true (entry.Store.path = tpath);
        check_int "epoch 2" 2 entry.Store.epoch;
        check_answers "fallback" entry);
      (* repair the container: a reload remaps it *)
      Zcodec.save s ~path:zpath;
      (match Store.reload store circuit_name with
      | Error e -> Alcotest.failf "reload after repair: %s" (Store.error_to_string e)
      | Ok entry ->
        check_bool "repaired container remapped" true entry.Store.mapped;
        check_int "epoch 3" 3 entry.Store.epoch;
        check_answers "remapped" entry);
      (* damaged container with no text fallback: salvage, flagged *)
      Persist.atomic_write ~path:zpath (Fault.flip_bits ~seed:6 ~flips:4 ~from:256 raw);
      Sys.remove tpath;
      match Store.reload store circuit_name with
      | Error _ -> () (* beyond salvage is an acceptable typed outcome *)
      | Ok entry ->
        check_bool "salvaged container is flagged" true entry.Store.salvaged;
        check_bool "salvage serves from the heap" false entry.Store.mapped)

(* --- Shared-memory fast path (DESIGN.md §13) -------------------------- *)

(* Every shm scenario keeps the chaos suite's invariant: a ring fault
   surfaces as a typed client error or a transparent socket fallback,
   never as a wrong answer, a crash, or a SIGBUS — and the answers that
   do arrive are cross-checked against the in-process oracle. *)

let shm_round_trip () =
  with_server (fun server addr ->
      with_client ~shm:true addr (fun client ->
          let dims = random_batch ~seed:21 48 in
          let ids, meta =
            ok_or_fail "query" (Client.query_ids client ~circuit:circuit_name dims)
          in
          check_bool "ring negotiated" true (Client.ring_active client);
          check_bool "not degraded" false meta.Client.degraded;
          check_bool "ids match the oracle" true (ids = expected_ids dims);
          let sub = Array.sub dims 0 6 in
          let plans, _ =
            ok_or_fail "instantiate" (Client.instantiate client ~circuit:circuit_name sub)
          in
          let engine = Lazy.force oracle in
          let session = Structure.Engine.new_session () in
          Array.iteri
            (fun i rects ->
              check_bool
                (Printf.sprintf "floorplan %d matches the oracle" i)
                true
                (rects = Structure.Engine.instantiate engine session sub.(i)))
            plans;
          let cs = Client.stats client in
          check_bool "requests rode the ring" true (cs.Client.ring_requests >= 2);
          let ss = Server.stats server in
          check_int "one shm session" 1 ss.Server.shm_sessions;
          check_bool "ring-served requests counted" true (ss.Server.shm_served >= 2)))

(* MPSZ-backed answers over the ring arrive as descriptors into the
   container the client maps read-only — same ids, no copy. *)
let shm_descriptor_replies () =
  with_server ~container:true (fun server addr ->
      with_client ~shm:true addr (fun client ->
          let dims = random_batch ~seed:23 64 in
          let expect = expected_ids dims in
          check_bool "oracle has stored answers" true
            (Array.exists (fun id -> id >= 0) expect);
          let ids, _ =
            ok_or_fail "query" (Client.query_ids client ~circuit:circuit_name dims)
          in
          check_bool "descriptor ids match the oracle" true (ids = expect);
          check_bool "ring active" true (Client.ring_active client);
          check_bool "rode the ring" true
            ((Client.stats client).Client.ring_requests >= 1);
          check_bool "server served via ring" true
            ((Server.stats server).Server.shm_served >= 1)))

let shm_pipelined () =
  with_server ~container:true (fun _server addr ->
      with_client ~shm:true addr (fun client ->
          let batches = Array.init 10 (fun i -> random_batch ~seed:(100 + i) 24) in
          let results =
            Client.query_ids_pipelined client ~circuit:circuit_name batches
          in
          Array.iteri
            (fun i r ->
              let ids, _ = ok_or_fail (Printf.sprintf "batch %d" i) r in
              check_bool
                (Printf.sprintf "batch %d matches the oracle" i)
                true
                (ids = expected_ids batches.(i)))
            results;
          let cs = Client.stats client in
          check_bool "pipeline rode the ring" true (cs.Client.ring_requests >= 10);
          check_bool "frames overlapped" true (cs.Client.pipelined > 0)))

(* A daemon with shm disabled declines the hello; the client stays on
   the socket and the answers are unchanged. *)
let shm_declined_falls_back () =
  let config = { Server.default_config with Server.shm = false } in
  with_server ~config (fun server addr ->
      with_client ~shm:true addr (fun client ->
          let dims = random_batch ~seed:25 16 in
          let ids, _ =
            ok_or_fail "query" (Client.query_ids client ~circuit:circuit_name dims)
          in
          check_bool "no ring" false (Client.ring_active client);
          check_int "no ring requests" 0 (Client.stats client).Client.ring_requests;
          check_bool "socket answers match the oracle" true (ids = expected_ids dims);
          check_int "no sessions" 0 (Server.stats server).Server.shm_sessions))

(* chaos: the first reply frame published on the ring is torn.  The
   client reports a typed disconnect — never a wrong answer — and a
   retry renegotiates a fresh session and converges. *)
let shm_torn_frame_recovers () =
  let hooks, fired = Fault.shm_hooks_of_plan [ inj Fault.Shm_publish 0 Fault.Fail 1 ] in
  with_server ~shm_hooks:hooks ~container:true (fun _server addr ->
      with_client ~shm:true addr (fun client ->
          let dims = random_batch ~seed:31 16 in
          let expect = expected_ids dims in
          (match Client.query_ids client ~circuit:circuit_name dims with
          | Error (Client.Disconnected _) -> ()
          | Error e -> Alcotest.failf "torn frame: %s" (Client.error_to_string e)
          | Ok _ -> Alcotest.fail "a torn frame was delivered as an answer");
          check_int "tear fired" 1 (fired ());
          let rng = Mps_rng.Rng.create ~seed:7 in
          let ids, _ =
            ok_or_fail "retry after tear"
              (Client.with_retry ~rng client (fun () ->
                   Client.query_ids client ~circuit:circuit_name dims))
          in
          check_bool "converged to the oracle" true (ids = expect);
          check_bool "fresh ring negotiated" true (Client.ring_active client)))

(* chaos: bit flips after the checksum — a persistent CRC mismatch,
   indistinguishable from a tear; same typed outcome. *)
let shm_corrupt_frame_recovers () =
  let hooks, fired =
    Fault.shm_hooks_of_plan [ inj Fault.Shm_publish 0 (Fault.Corrupt 8) 99 ]
  in
  with_server ~shm_hooks:hooks ~container:true (fun _server addr ->
      with_client ~shm:true addr (fun client ->
          let dims = random_batch ~seed:33 16 in
          let expect = expected_ids dims in
          (match Client.query_ids client ~circuit:circuit_name dims with
          | Error (Client.Disconnected _) -> ()
          | Error e -> Alcotest.failf "corrupt frame: %s" (Client.error_to_string e)
          | Ok _ -> Alcotest.fail "a corrupt frame was delivered as an answer");
          check_int "corruption fired" 1 (fired ());
          let rng = Mps_rng.Rng.create ~seed:9 in
          let ids, _ =
            ok_or_fail "retry after corruption"
              (Client.with_retry ~rng client (fun () ->
                   Client.query_ids client ~circuit:circuit_name dims))
          in
          check_bool "converged to the oracle" true (ids = expect)))

(* chaos: the reply publication stalls past the client's budget — the
   deadline fires on the ring wait exactly as it would on a socket. *)
let shm_publish_stall_times_out () =
  let hooks, fired =
    Fault.shm_hooks_of_plan [ inj Fault.Shm_publish 0 (Fault.Stall 0.4) 1 ]
  in
  with_server ~shm_hooks:hooks ~container:true (fun _server addr ->
      with_client ~shm:true addr (fun client ->
          let dims = random_batch ~seed:35 16 in
          (match Client.query_ids ~budget:0.08 client ~circuit:circuit_name dims with
          | Error Client.Timed_out | Error (Client.Disconnected _) -> ()
          | Error (Client.Refused (Wire.Err_timeout, _)) -> ()
          | Error e -> Alcotest.failf "stalled publish: %s" (Client.error_to_string e)
          | Ok _ -> Alcotest.fail "a stalled reply beat an 80 ms budget");
          check_int "stall fired" 1 (fired ());
          let ids, _ =
            ok_or_fail "after the stall"
              (Client.query_ids client ~circuit:circuit_name dims)
          in
          check_bool "converged to the oracle" true (ids = expected_ids dims)))

(* Negotiate a session by hand (raw socket + attach) so the client half
   can misbehave in ways [Client] never would. *)
let raw_shm_hello fd =
  let status, b, len =
    raw_roundtrip fd ~opcode:(Wire.opcode_to_int Wire.Shm_hello) ~deadline_us:0
      ~build:(fun _ _ -> 0)
  in
  check_bool "hello ok" true (status = Wire.Ok);
  check_int "hello accepted" 1 (Wire.get_u8 b ~len Wire.reply_header_bytes);
  fst (Wire.get_string16 b ~len (Wire.reply_header_bytes + 5))

(* chaos: a wedged client — socket open, ring mapped, heartbeat silent.
   The stale stamp is the reap signal. *)
let shm_wedged_client_reaped () =
  let config = { Server.default_config with Server.shm_heartbeat_timeout = 0.2 } in
  with_server ~config (fun server addr ->
      let fd = connect_raw addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let path = raw_shm_hello fd in
          let ring = Shm.attach ~path () in
          Shm.heartbeat ring;
          (* ...and never again: the peer looks alive on the socket but
             dead on the ring *)
          check_bool "session reaped on stale heartbeat" true
            (wait_until (fun () -> (Server.stats server).Server.shm_reaped >= 1));
          check_bool "ring file unlinked" true
            (wait_until (fun () -> not (Sys.file_exists path)))))

(* chaos: kill -9 — the kernel closes the socket, nobody closes the
   ring.  The EOF is the immediate reap signal; the ring file is
   unlinked so sessions cannot accumulate. *)
let shm_killed_client_reaped () =
  with_server (fun server addr ->
      let fd = connect_raw addr in
      let path = raw_shm_hello fd in
      let ring = Shm.attach ~path () in
      Shm.heartbeat ring;
      Unix.close fd;
      check_bool "session reaped on socket EOF" true
        (wait_until (fun () -> (Server.stats server).Server.shm_reaped >= 1));
      check_bool "ring file unlinked" true
        (wait_until (fun () -> not (Sys.file_exists path)));
      (* the survivor's mapping of the dead inode stays readable: typed
         errors, never SIGBUS *)
      match Shm.recv ~deadline:(Unix.gettimeofday () +. 0.2) ring ~buf:(ref (Bytes.create 64)) with
      | _ -> Alcotest.fail "recv on a reaped session returned data"
      | exception (Shm.Dead _ | Shm.Timeout) -> ())

(* chaos: the container is republished as a runt *under* the session.
   The rename keeps the server's old inode mapped (its descriptors are
   still sized for the old file) and the pinned mtime keeps the store
   from reloading — but the client maps the new, tiny file.  Every
   descriptor is now out of bounds; the client must refuse it typed,
   never crash and never fabricate ids. *)
let shm_descriptor_out_of_bounds () =
  with_server ~container:true (fun server addr ->
      let store = Server.store server in
      let zpath = Store.zpath_for store circuit_name in
      let t0 = 1_000_000_000.0 in
      Unix.utimes zpath t0 t0;
      with_client ~shm:true addr (fun client ->
          let dims = random_batch ~seed:81 8 in
          let expect = expected_ids dims in
          check_bool "oracle has stored answers" true
            (Array.exists (fun id -> id >= 0) expect);
          let ids, _ =
            ok_or_fail "first query" (Client.query_ids client ~circuit:circuit_name dims)
          in
          check_bool "descriptors validated" true (ids = expect);
          check_bool "ring active" true (Client.ring_active client);
          let runt = zpath ^ ".runt" in
          let oc = open_out_bin runt in
          output_string oc (String.make 64 '\000');
          close_out oc;
          Unix.rename runt zpath;
          Unix.utimes zpath t0 t0;
          Client.close client;
          match Client.query_ids client ~circuit:circuit_name dims with
          | Error (Client.Disconnected _) -> ()
          | Error e ->
            Alcotest.failf "out-of-bounds descriptor: %s" (Client.error_to_string e)
          | Ok _ -> Alcotest.fail "out-of-bounds descriptors were accepted"))

(* A reload bumps the epoch; descriptor replies carry it and the client
   remaps the container before trusting any offset. *)
let shm_reload_remaps () =
  with_server ~container:true (fun _server addr ->
      with_client ~shm:true addr (fun client ->
          let dims = random_batch ~seed:41 16 in
          let expect = expected_ids dims in
          let ids, meta =
            ok_or_fail "first query" (Client.query_ids client ~circuit:circuit_name dims)
          in
          check_int "first epoch" 1 meta.Client.epoch;
          check_bool "first ids" true (ids = expect);
          let _ = ok_or_fail "reload" (Client.reload client ~circuit:circuit_name) in
          let ids2, meta2 =
            ok_or_fail "after reload" (Client.query_ids client ~circuit:circuit_name dims)
          in
          check_int "bumped epoch" 2 meta2.Client.epoch;
          check_bool "remapped ids" true (ids2 = expect);
          check_bool "ring survived the reload" true (Client.ring_active client)))

(* A batch that cannot fit a tiny ring transparently rides the socket —
   the ring stays up for the batches that do fit. *)
let shm_large_batch_socket_fallback () =
  let config = { Server.default_config with Server.shm_ring_words = 256 } in
  with_server ~config ~container:true (fun _server addr ->
      with_client ~shm:true addr (fun client ->
          let big = random_batch ~seed:51 200 in
          let ids, _ =
            ok_or_fail "big batch" (Client.query_ids client ~circuit:circuit_name big)
          in
          check_bool "ring negotiated" true (Client.ring_active client);
          check_int "big batch stayed on the socket" 0
            (Client.stats client).Client.ring_requests;
          check_bool "big ids match the oracle" true (ids = expected_ids big);
          let small = random_batch ~seed:53 4 in
          let ids2, _ =
            ok_or_fail "small batch" (Client.query_ids client ~circuit:circuit_name small)
          in
          check_int "small batch rode the ring" 1
            (Client.stats client).Client.ring_requests;
          check_bool "small ids match the oracle" true (ids2 = expected_ids small)))

(* The ring itself, driven directly: wraparound under sustained mixed
   frame sizes, refusal of impossible frames, typed timeout on an empty
   ring, typed death on peer close. *)
let shm_ring_direct () =
  with_tmp_dir (fun dir ->
      let path = Filename.concat dir "direct.ring" in
      let server = Shm.create ~ring_words:256 ~path () in
      let client = Shm.attach ~path () in
      Shm.heartbeat server;
      Shm.heartbeat client;
      let buf = ref (Bytes.create 16) in
      for i = 0 to 199 do
        let len = 1 + (i * 7 mod 900) in
        let s =
          String.init len (fun j -> Char.chr (((i * 37) + (j * 11) + 200) land 0xff))
        in
        let b = Bytes.of_string s in
        Shm.send client b ~off:0 ~len;
        let got = Shm.recv server ~buf in
        check_bool
          (Printf.sprintf "frame %d round-trips" i)
          true
          (got = len && Bytes.sub_string !buf 0 got = s);
        Shm.send server b ~off:0 ~len;
        let got2 = Shm.recv client ~buf in
        check_bool
          (Printf.sprintf "echo %d round-trips" i)
          true
          (got2 = len && Bytes.sub_string !buf 0 got2 = s)
      done;
      (match Shm.send client (Bytes.create 4096) ~off:0 ~len:4096 with
      | () -> Alcotest.fail "an impossible frame was accepted"
      | exception Invalid_argument _ -> ());
      (match Shm.recv ~deadline:(Unix.gettimeofday () +. 0.05) server ~buf with
      | _ -> Alcotest.fail "recv from an empty ring returned"
      | exception Shm.Timeout -> ());
      Shm.close client;
      (match Shm.recv ~deadline:(Unix.gettimeofday () +. 1.0) server ~buf with
      | _ -> Alcotest.fail "recv after peer close returned"
      | exception Shm.Dead _ -> ());
      Shm.remove server)

(* --- Farewell mid-pipeline (reconnect integrity) ---------------------- *)

(* A hand-rolled daemon speaking just enough of the protocol to send a
   farewell [Err_overloaded] mid-pipeline on its first connection, then
   serve later connections fully — echoing the request id as every
   placement id, so a reply matched to the wrong slot is visible as a
   count mismatch or a wrong echo.  The client must fail the in-flight
   tail typed, leak nothing, and keep positional integrity after the
   reconnect. *)
let farewell_mid_pipeline () =
  with_tmp_dir (fun dir ->
      let sock = Filename.concat dir "fake.sock" in
      let listen_fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind listen_fd (Unix.ADDR_UNIX sock);
      Unix.listen listen_fd 8;
      let stop = Atomic.make false in
      let send_reply fd ~status ~rep_id ~build =
        let buf = ref (Bytes.create 256) in
        let rh = Wire.reply_header_bytes in
        let prefix = Wire.frame_prefix_bytes in
        let body = build buf (prefix + rh) in
        let b = !buf in
        Wire.set_u8 b prefix (Wire.status_to_int status);
        Wire.set_u32 b (prefix + 1) rep_id;
        Wire.set_u32 b (prefix + 5) 1;
        Wire.send_frame Transport.default fd b ~payload_len:(rh + body)
      in
      let serve_conn ~farewell fd =
        let inbuf = ref (Bytes.create 4096) in
        let served = ref 0 in
        (try
           let rec loop () =
             let len =
               Wire.recv_frame Transport.default ~max_bytes:Wire.max_frame_default
                 ~buf:inbuf fd
             in
             let b = !inbuf in
             let opcode = Wire.get_u8 b ~len 0 in
             let req_id = Wire.get_u32 b ~len 1 in
             if opcode = Wire.opcode_to_int Wire.Open_circuit then begin
               send_reply fd ~status:Wire.Ok ~rep_id:req_id ~build:(fun buf off ->
                   Wire.ensure buf (off + 9);
                   let b = !buf in
                   Wire.set_u16 b off 1;
                   Wire.set_u8 b (off + 2) 0;
                   Wire.set_u16 b (off + 3) 1;
                   Wire.set_u32 b (off + 5) 1;
                   9);
               loop ()
             end
             else if opcode = Wire.opcode_to_int Wire.Query_batch then begin
               let count = Wire.get_u32 b ~len (Wire.request_header_bytes + 2) in
               incr served;
               if farewell && !served > 1 then
                 send_reply fd ~status:Wire.Err_overloaded ~rep_id:0
                   ~build:(fun buf off -> Wire.put_string16 buf off "shedding" - off)
               else begin
                 send_reply fd ~status:Wire.Ok ~rep_id:req_id ~build:(fun buf off ->
                     Wire.ensure buf (off + 4 + (count * 4));
                     let b = !buf in
                     Wire.set_u32 b off count;
                     for i = 0 to count - 1 do
                       Wire.set_i32 b (off + 4 + (i * 4)) req_id
                     done;
                     4 + (count * 4));
                 loop ()
               end
             end
             else loop ()
           in
           loop ()
         with _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      in
      let th =
        Thread.create
          (fun () ->
            let first = ref true in
            while not (Atomic.get stop) do
              match Unix.accept ~cloexec:true listen_fd with
              | fd, _ ->
                let farewell = !first in
                first := false;
                serve_conn ~farewell fd
              | exception Unix.Unix_error _ -> ()
            done)
          ()
      in
      Fun.protect
        ~finally:(fun () ->
          Atomic.set stop true;
          (* closing a listener does not interrupt a blocked [accept]:
             wake the thread with a throwaway connection instead *)
          (try
             let w = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
             Unix.connect w (Unix.ADDR_UNIX sock);
             Unix.close w
           with Unix.Unix_error _ -> ());
          Thread.join th;
          try Unix.close listen_fd with Unix.Unix_error _ -> ())
        (fun () ->
          with_client (Server.Unix_path sock) (fun client ->
              (* distinct counts per batch: a misrouted reply cannot parse *)
              let batches = Array.init 6 (fun i -> random_batch ~seed:i (i + 1)) in
              let results =
                Client.query_ids_pipelined ~depth:4 client ~circuit:circuit_name
                  batches
              in
              check_int "positional results" (Array.length batches)
                (Array.length results);
              let oks = ref 0 and refused = ref 0 and dropped = ref 0 in
              Array.iteri
                (fun i r ->
                  match r with
                  | Ok (ids, _) ->
                    incr oks;
                    check_int
                      (Printf.sprintf "batch %d count" i)
                      (Array.length batches.(i))
                      (Array.length ids);
                    check_bool
                      (Printf.sprintf "batch %d echo is uniform" i)
                      true
                      (Array.for_all (fun id -> id = ids.(0)) ids)
                  | Error (Client.Refused (Wire.Err_overloaded, _)) -> incr refused
                  | Error (Client.Disconnected _) -> incr dropped
                  | Error e ->
                    Alcotest.failf "batch %d: %s" i (Client.error_to_string e))
                results;
              check_bool "served before the farewell" true (!oks >= 1);
              check_bool "in-flight tail refused typed" true (!refused >= 1);
              check_int "every batch accounted for" (Array.length batches)
                (!oks + !refused + !dropped);
              (* after the reconnect: clean slate, no leaked slots, and
                 strictly increasing echoes prove each reply matched the
                 request that asked for it *)
              let results2 =
                Client.query_ids_pipelined ~depth:4 client ~circuit:circuit_name
                  batches
              in
              let echoes =
                Array.mapi
                  (fun i r ->
                    let ids, _ = ok_or_fail (Printf.sprintf "retry batch %d" i) r in
                    check_int
                      (Printf.sprintf "retry batch %d count" i)
                      (Array.length batches.(i))
                      (Array.length ids);
                    check_bool
                      (Printf.sprintf "retry batch %d echo is uniform" i)
                      true
                      (Array.for_all (fun id -> id = ids.(0)) ids);
                    ids.(0))
                  results2
              in
              Array.iteri
                (fun i e ->
                  if i > 0 then
                    check_bool
                      (Printf.sprintf "echo %d ordered" i)
                      true
                      (e > echoes.(i - 1)))
                echoes;
              check_bool "client reconnected once" true
                ((Client.stats client).Client.connects >= 2))))

(* --- Hedging across daemons ------------------------------------------- *)

(* Satellite of the shm work: the hedge can now target a different
   daemon.  The primary's worker stalls mid-query; the hedge goes to
   the healthy peer and wins, and only the losing connection is
   poisoned — the client recovers the primary on the next call. *)
let hedged_across_daemons () =
  let plan = [ inj Fault.Worker_stall 1 (Fault.Stall 0.6) 1 ] in
  let hook, fired = Fault.worker_hook_of_plan plan in
  with_server ~fault:hook (fun _primary addr1 ->
      with_server (fun peer addr2 ->
          with_client addr1 (fun client ->
              let dims = random_batch ~seed:61 16 in
              let t0 = Unix.gettimeofday () in
              let ids, _ =
                ok_or_fail "hedged query"
                  (Client.hedged_query_ids ~hedge_after:0.05 ~peers:[ addr2 ] client
                     ~circuit:circuit_name dims)
              in
              let dt = Unix.gettimeofday () -. t0 in
              check_bool "hedged answers correct" true (ids = expected_ids dims);
              check_bool "beat the stalled daemon" true (dt < 0.5);
              check_int "stall fired" 1 (fired ());
              let s = Client.stats client in
              check_int "one hedge launched" 1 s.Client.hedges;
              check_int "the peer won" 1 s.Client.hedge_wins;
              check_bool "peer served the hedge" true
                ((Server.stats peer).Server.requests_served > 0);
              (* only the loser was poisoned: the next call reconnects
                 the primary and is served *)
              let ids2, _ =
                ok_or_fail "after the race"
                  (Client.query_ids client ~circuit:circuit_name dims)
              in
              check_bool "primary recovered" true (ids2 = expected_ids dims))))

let suite =
  [
    Alcotest.test_case "round trip matches the in-process oracle" `Quick round_trip;
    Alcotest.test_case "unknown circuit and missing file are typed" `Quick
      unknown_and_missing;
    Alcotest.test_case "server-side deadline is enforced" `Quick server_side_deadline;
    Alcotest.test_case "malformed requests are rejected, connection lives" `Quick
      malformed_requests;
    Alcotest.test_case "in-flight admission sheds with Err_overloaded" `Quick
      shed_inflight;
    Alcotest.test_case "connection limit sheds, first client unharmed" `Quick
      shed_connections;
    Alcotest.test_case "chaos: short reads and writes heal" `Quick short_io_heals;
    Alcotest.test_case "chaos: stall past deadline, retry converges" `Quick
      stall_past_deadline;
    Alcotest.test_case "chaos: disconnect mid-request, retry converges" `Quick
      disconnect_mid_request;
    Alcotest.test_case "chaos: accept failure is survived" `Quick
      accept_failure_survived;
    Alcotest.test_case "chaos: crash, restart, client converges" `Quick
      crash_restart_converge;
    Alcotest.test_case "degraded entries are flagged, never silently wrong" `Quick
      degraded_serving;
    Alcotest.test_case "hot reload bumps epochs" `Quick hot_reload_epochs;
    Alcotest.test_case "idle connections are dropped" `Quick idle_timeout_drops;
    Alcotest.test_case "pipelined batches match the oracle" `Quick pipelined_batches;
    Alcotest.test_case "chaos: worker crash is a typed, retryable loss" `Quick
      worker_crash_typed_reply;
    Alcotest.test_case "chaos: workers killed under load, clients converge" `Quick
      kill_worker_under_load;
    Alcotest.test_case "chaos: restart storm trips the breaker" `Quick
      restart_storm_breaker;
    Alcotest.test_case "chaos: readiness flaps with worker state" `Quick
      readiness_flap;
    Alcotest.test_case "chaos: hedge beats a stalled worker" `Quick
      hedge_beats_stalled_worker;
    Alcotest.test_case "store prefers the container, falls back typed" `Quick
      store_prefers_container;
    Alcotest.test_case "store hot-reload race never serves a torn engine" `Quick
      store_reload_race;
    Alcotest.test_case "shm: ring round trip matches the oracle" `Quick
      shm_round_trip;
    Alcotest.test_case "shm: descriptor replies match the oracle" `Quick
      shm_descriptor_replies;
    Alcotest.test_case "shm: pipelined batches ride the ring" `Quick shm_pipelined;
    Alcotest.test_case "shm: declined hello falls back to the socket" `Quick
      shm_declined_falls_back;
    Alcotest.test_case "shm chaos: torn frame is typed, retry converges" `Quick
      shm_torn_frame_recovers;
    Alcotest.test_case "shm chaos: corrupt frame is typed, retry converges" `Quick
      shm_corrupt_frame_recovers;
    Alcotest.test_case "shm chaos: stalled publish hits the deadline" `Quick
      shm_publish_stall_times_out;
    Alcotest.test_case "shm chaos: wedged client is reaped by heartbeat" `Quick
      shm_wedged_client_reaped;
    Alcotest.test_case "shm chaos: kill -9'd client is reaped on EOF" `Quick
      shm_killed_client_reaped;
    Alcotest.test_case "shm chaos: out-of-bounds descriptors are refused" `Quick
      shm_descriptor_out_of_bounds;
    Alcotest.test_case "shm: reload remaps the container by epoch" `Quick
      shm_reload_remaps;
    Alcotest.test_case "shm: oversized batches fall back to the socket" `Quick
      shm_large_batch_socket_fallback;
    Alcotest.test_case "shm: ring wraparound, refusal, timeout, close" `Quick
      shm_ring_direct;
    Alcotest.test_case "pipelined farewell keeps positional integrity" `Quick
      farewell_mid_pipeline;
    Alcotest.test_case "chaos: hedge across daemons beats a stalled one" `Quick
      hedged_across_daemons;
  ]

(* Tests for the deterministic PRNG helpers. *)

open Mps_rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_seed_sensitivity () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:8 in
  let draws t = List.init 20 (fun _ -> Rng.int t 1_000_000) in
  check_bool "different seeds differ" true (draws a <> draws b)

let test_copy_replays () =
  let a = Rng.create ~seed:3 in
  ignore (Rng.int a 10);
  let b = Rng.copy a in
  check_int "copy replays" (Rng.int a 1000) (Rng.int b 1000)

let test_serialization_replays () =
  (* checkpoint/resume determinism rests on this: a rehydrated state
     replays the exact stream, across every draw kind *)
  let a = Rng.create ~seed:11 in
  for _ = 1 to 257 do
    ignore (Rng.float a 1.0)
  done;
  let token = Rng.to_string a in
  check_bool "token is one printable word" true
    (String.for_all (fun c -> c <> ' ' && c <> '\n') token);
  let b = match Rng.of_string token with Some b -> b | None -> Alcotest.fail "rehydrate" in
  for _ = 1 to 500 do
    check_int "ints replay" (Rng.int a 1_000_000) (Rng.int b 1_000_000)
  done;
  for _ = 1 to 500 do
    Alcotest.(check (float 0.0)) "floats replay" (Rng.float a 1.0) (Rng.float b 1.0)
  done;
  check_bool "bools replay" (Rng.bool a) (Rng.bool b)

let test_serialization_rejects_garbage () =
  check_bool "empty rejected" true (Rng.of_string "" = None);
  check_bool "odd length rejected" true (Rng.of_string "abc" = None);
  check_bool "non-hex rejected" true (Rng.of_string "zz" = None);
  check_bool "truncated blob rejected" true (Rng.of_string "0a1b" = None)

let draws t = List.init 50 (fun _ -> Rng.int t 1_000_000)

let test_split_independent () =
  (* independence smoke test: parent, siblings, and cross-seed streams
     must not correlate *)
  let a = Rng.create ~seed:3 in
  let b = Rng.split a 0 and c = Rng.split a 1 in
  check_bool "child differs from parent" true (draws (Rng.copy a) <> draws b);
  check_bool "siblings differ" true (draws (Rng.copy b) <> draws (Rng.copy c));
  let d = Rng.split (Rng.create ~seed:4) 0 in
  check_bool "children of different seeds differ" true (draws b <> draws d);
  (* coarse correlation check: sibling streams agree on a uniform draw
     about as often as independent ones would (1/64 per position) *)
  let x = Rng.split a 2 and y = Rng.split a 3 in
  let agree = ref 0 in
  for _ = 1 to 2048 do
    if Rng.int x 64 = Rng.int y 64 then incr agree
  done;
  check_bool "siblings uncorrelated" true (!agree < 100)

let test_split_deterministic () =
  (* same (seed, id) -> identical stream, regardless of how much the
     parent has drawn: splitting is a pure function of the key path *)
  let a = Rng.create ~seed:3 in
  let early = draws (Rng.split a 5) in
  for _ = 1 to 100 do
    ignore (Rng.int a 1000)
  done;
  Alcotest.(check (list int)) "same (seed,id) stream" early (draws (Rng.split a 5));
  Alcotest.(check (list int)) "fresh parent, same stream" early
    (draws (Rng.split (Rng.create ~seed:3) 5))

let test_split_pure () =
  (* splitting consumes nothing from the parent *)
  let a = Rng.create ~seed:3 and b = Rng.create ~seed:3 in
  ignore (Rng.split a 0);
  ignore (Rng.split a 1);
  Alcotest.(check (list int)) "parent stream undisturbed" (draws b) (draws a)

let test_split_survives_serialization () =
  let a = Rng.create ~seed:3 in
  ignore (Rng.int a 1000);
  let b =
    match Rng.of_string (Rng.to_string a) with
    | Some b -> b
    | None -> Alcotest.fail "rehydrate"
  in
  Alcotest.(check (list int)) "split replays after round-trip"
    (draws (Rng.split a 7)) (draws (Rng.split b 7));
  Alcotest.check_raises "negative id" (Invalid_argument "Rng.split: stream id must be >= 0")
    (fun () -> ignore (Rng.split a (-1)))

let test_int_in_range () =
  let t = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Rng.int_in t (-5) 5 in
    check_bool "in range" true (v >= -5 && v <= 5)
  done

let test_int_in_degenerate () =
  let t = Rng.create ~seed:1 in
  check_int "single point" 42 (Rng.int_in t 42 42)

let test_int_in_covers_endpoints () =
  let t = Rng.create ~seed:1 in
  let seen = Array.make 3 false in
  for _ = 1 to 500 do
    seen.(Rng.int_in t 0 2) <- true
  done;
  check_bool "all values hit" true (Array.for_all Fun.id seen)

let test_invalid_args () =
  let t = Rng.create ~seed:1 in
  Alcotest.check_raises "int non-positive"
    (Invalid_argument "Rng.int: bound must be positive") (fun () -> ignore (Rng.int t 0));
  Alcotest.check_raises "empty range" (Invalid_argument "Rng.int_in: empty range")
    (fun () -> ignore (Rng.int_in t 3 2));
  Alcotest.check_raises "empty array" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Rng.choose t [||]));
  Alcotest.check_raises "empty list" (Invalid_argument "Rng.choose_list: empty list")
    (fun () -> ignore (Rng.choose_list t []))

let test_bernoulli_extremes () =
  let t = Rng.create ~seed:1 in
  for _ = 1 to 50 do
    check_bool "p=1" true (Rng.bernoulli t 1.0);
    check_bool "p=0" false (Rng.bernoulli t 0.0)
  done

let test_bernoulli_rate () =
  let t = Rng.create ~seed:5 in
  let hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.bernoulli t 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check_bool "rate near 0.3" true (rate > 0.27 && rate < 0.33)

let test_gaussian_moments () =
  let t = Rng.create ~seed:5 in
  let n = 20_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let v = Rng.gaussian t ~mu:2.0 ~sigma:3.0 in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  check_bool "mean near 2" true (abs_float (mean -. 2.0) < 0.1);
  check_bool "sigma near 3" true (abs_float (sqrt var -. 3.0) < 0.15)

let test_shuffle_is_permutation () =
  let t = Rng.create ~seed:9 in
  let l = List.init 50 Fun.id in
  let s = Rng.shuffle t l in
  Alcotest.(check (list int)) "same multiset" l (List.sort Int.compare s)

let test_shuffle_in_place_permutation () =
  let t = Rng.create ~seed:9 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle_in_place t a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_sample_distinct () =
  let t = Rng.create ~seed:11 in
  for _ = 1 to 50 do
    let s = Rng.sample_distinct t ~k:5 ~n:10 in
    check_int "k values" 5 (List.length s);
    check_int "distinct" 5 (List.length (List.sort_uniq Int.compare s));
    List.iter (fun v -> check_bool "in range" true (v >= 0 && v < 10)) s
  done

let test_sample_distinct_full () =
  let t = Rng.create ~seed:11 in
  let s = Rng.sample_distinct t ~k:10 ~n:10 in
  Alcotest.(check (list int)) "whole range" (List.init 10 Fun.id)
    (List.sort Int.compare s)

let test_float_in () =
  let t = Rng.create ~seed:2 in
  for _ = 1 to 1000 do
    let v = Rng.float_in t (-1.5) 2.5 in
    check_bool "in range" true (v >= -1.5 && v < 2.5)
  done

let suite =
  [
    ("same seed, same stream", `Quick, test_determinism);
    ("different seeds differ", `Quick, test_seed_sensitivity);
    ("copy replays the stream", `Quick, test_copy_replays);
    ("serialized state replays the stream", `Quick, test_serialization_replays);
    ("of_string rejects garbage", `Quick, test_serialization_rejects_garbage);
    ("split yields independent streams", `Quick, test_split_independent);
    ("split is deterministic in (seed, id)", `Quick, test_split_deterministic);
    ("split leaves the parent stream intact", `Quick, test_split_pure);
    ("split survives serialization", `Quick, test_split_survives_serialization);
    ("int_in respects bounds", `Quick, test_int_in_range);
    ("int_in degenerate range", `Quick, test_int_in_degenerate);
    ("int_in covers endpoints", `Quick, test_int_in_covers_endpoints);
    ("invalid arguments raise", `Quick, test_invalid_args);
    ("bernoulli extremes", `Quick, test_bernoulli_extremes);
    ("bernoulli empirical rate", `Quick, test_bernoulli_rate);
    ("gaussian empirical moments", `Quick, test_gaussian_moments);
    ("shuffle is a permutation", `Quick, test_shuffle_is_permutation);
    ("shuffle_in_place is a permutation", `Quick, test_shuffle_in_place_permutation);
    ("sample_distinct draws k distinct", `Quick, test_sample_distinct);
    ("sample_distinct full range", `Quick, test_sample_distinct_full);
    ("float_in respects bounds", `Quick, test_float_in);
  ]

(* Test runner: one Alcotest suite per library module group. *)

let () =
  Alcotest.run "mps"
    [
      ("rng", Test_rng.suite);
      ("geometry", Test_geometry.suite);
      ("netlist", Test_netlist.suite);
      ("modgen", Test_modgen.suite);
      ("cost", Test_cost.suite);
      ("incremental", Test_incremental.suite);
      ("anneal", Test_anneal.suite);
      ("placement", Test_placement.suite);
      ("bitset", Test_bitset.suite);
      ("row", Test_row.suite);
      ("mps", Test_mps.suite);
      ("engine", Test_engine.suite);
      ("mps-multiblock", Test_mps_multiblock.suite);
      ("seqpair", Test_seqpair.suite);
      ("slicing", Test_slicing.suite);
      ("route", Test_route.suite);
      ("symmetry", Test_symmetry.suite);
      ("baselines", Test_baselines.suite);
      ("synthesis", Test_synthesis.suite);
      ("folded-cascode", Test_folded_cascode.suite);
      ("render", Test_render.suite);
      ("codec", Test_codec.suite);
      ("audit", Test_audit.suite);
      ("fault", Test_fault.suite);
      ("persist", Test_persist.suite);
      ("serve", Test_serve.suite);
      ("checkpoint", Test_checkpoint.suite);
      ("parallel", Test_parallel.suite);
      ("experiments", Test_experiments.suite);
      ("csv", Test_csv.suite);
      ("integration", Test_integration.suite);
      ("zcodec", Test_zcodec.suite);
    ]

(* Tests for crash-safe generation: checkpoint snapshots, integrity
   rejection, the kill-resume determinism property, and graceful
   wall-clock deadline stops. *)

open Mps_netlist
open Mps_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let circuit = Benchmarks.circ01

(* Small deterministic budget that always runs its full 9 explorer
   steps: the coverage target is unreachable and the placement cap is
   far away, so every run stops on the iteration budget alone. *)
let base_config =
  {
    Generator.fast_config with
    Generator.explorer_iterations = 9;
    bdio = { Bdio.default_config with Bdio.iterations = 40 };
    coverage_target = 2.0;
    max_placements = 1000;
    backup_iterations = 150;
    refine_iterations = 0;
  }

let with_checkpoint_file f =
  let path = Filename.temp_file "mps_ckpt" ".mpsc" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* Run with periodic checkpointing; the last snapshot (step 5 of 9)
   is left on disk for the resume tests. *)
let checkpointed_run path =
  let config =
    { base_config with Generator.checkpoint_every = 5; checkpoint_path = Some path }
  in
  Generator.generate ~config circuit

let test_checkpoint_file_roundtrip () =
  with_checkpoint_file (fun path ->
      let _ = checkpointed_run path in
      check_bool "checkpoint file left behind" true (Sys.file_exists path);
      let cp = Checkpoint.load ~circuit ~path in
      check_int "snapshot taken at step 5" 5 cp.Checkpoint.step;
      (* save → load → to_string is a fixpoint *)
      let path2 = Filename.temp_file "mps_ckpt2" ".mpsc" in
      Checkpoint.save cp ~path:path2;
      let cp' = Checkpoint.load ~circuit ~path:path2 in
      Sys.remove path2;
      check_bool "checkpoint round-trips bit-exactly" true
        (Checkpoint.to_string cp = Checkpoint.to_string cp');
      check_int "step survives" cp.Checkpoint.step cp'.Checkpoint.step;
      check_int "dropped survives" cp.Checkpoint.dropped cp'.Checkpoint.dropped;
      check_bool "structure survives" true
        (Codec.to_string cp.Checkpoint.structure
        = Codec.to_string cp'.Checkpoint.structure))

(* The acceptance property: a run checkpointed and resumed at an
   arbitrary step yields the same stored-placement set as the
   uninterrupted run with the same seed.  The resumed walk replays
   steps 5..9 from the snapshot; both documents must match the
   straight run byte for byte. *)
let test_resume_matches_straight_run () =
  with_checkpoint_file (fun path ->
      let interrupted, stats_a = checkpointed_run path in
      let cp = Checkpoint.load ~circuit ~path in
      let resumed, stats_b = Generator.resume ~config:base_config cp in
      let straight, stats_c = Generator.generate ~config:base_config circuit in
      check_bool "checkpointing does not perturb the walk" true
        (Codec.to_string interrupted = Codec.to_string straight);
      check_bool "resumed run equals the uninterrupted run" true
        (Codec.to_string resumed = Codec.to_string straight);
      check_int "same total steps" stats_c.Generator.explorer_steps
        stats_b.Generator.explorer_steps;
      check_int "same stored count" stats_c.Generator.placements_stored
        stats_b.Generator.placements_stored;
      check_int "same drop count" stats_c.Generator.candidates_dropped
        stats_b.Generator.candidates_dropped;
      Alcotest.(check (float 0.0)) "same coverage" stats_c.Generator.coverage
        stats_b.Generator.coverage;
      ignore stats_a)

let test_corrupt_checkpoint_rejected () =
  with_checkpoint_file (fun path ->
      let _ = checkpointed_run path in
      let cp = Checkpoint.load ~circuit ~path in
      let doc = Checkpoint.to_string cp in
      let rejects s =
        try
          ignore (Checkpoint.of_string ~circuit s);
          false
        with Codec.Error _ -> true
      in
      (* flip one payload character: the checkpoint's own checksum
         must catch it *)
      let b = Bytes.of_string doc in
      let i = String.length doc / 2 in
      Bytes.set b i (if Bytes.get b i = '0' then '1' else '0');
      check_bool "bit flip rejected" true (rejects (Bytes.to_string b));
      (* truncation at every line boundary is rejected too: a
         checkpoint is whole or refused, never salvaged *)
      let lines = String.split_on_char '\n' doc in
      for keep = 0 to List.length lines - 2 do
        check_bool
          (Printf.sprintf "truncation to %d lines rejected" keep)
          true
          (rejects (String.concat "\n" (List.filteri (fun i _ -> i < keep) lines)))
      done;
      check_bool "garbage rejected" true (rejects "mps-checkpoint v9\nwhat\n");
      (* wrong circuit is reported as a mismatch, not corruption *)
      check_bool "wrong circuit rejected" true
        (try
           ignore (Checkpoint.of_string ~circuit:Benchmarks.circ02 doc);
           false
         with Codec.Error (Codec.Circuit_mismatch _) -> true))

(* A zero deadline stops before the annealing loop: the run still
   returns a valid (backup-covered) structure, flags the early stop,
   and force-writes a final checkpoint — from which a resume finishes
   the job identically to a never-interrupted run. *)
let test_deadline_stops_gracefully_and_resumes () =
  with_checkpoint_file (fun path ->
      let config =
        {
          base_config with
          Generator.max_seconds = Some 0.0;
          checkpoint_path = Some path;
          checkpoint_every = 5;
        }
      in
      let s, stats = Generator.generate ~config circuit in
      check_bool "deadline flagged" true stats.Generator.deadline_hit;
      check_bool "interim structure still valid" true (Structure.n_placements s >= 1);
      check_bool "final checkpoint forced" true (Sys.file_exists path);
      let cp = Checkpoint.load ~circuit ~path in
      check_int "stopped right after the initial evaluation" 1 cp.Checkpoint.step;
      let resumed, rstats = Generator.resume ~config:base_config cp in
      let straight, _ = Generator.generate ~config:base_config circuit in
      check_bool "deadline + resume equals the uninterrupted run" true
        (Codec.to_string resumed = Codec.to_string straight);
      check_bool "resumed run ran to its budget" true
        (not rstats.Generator.deadline_hit))

let test_no_deadline_runs_to_budget () =
  let _, stats = Generator.generate ~config:base_config circuit in
  check_bool "no spurious deadline flag" true (not stats.Generator.deadline_hit);
  check_int "full iteration budget" base_config.Generator.explorer_iterations
    stats.Generator.explorer_steps

let suite =
  [
    ("checkpoint file round-trips", `Quick, test_checkpoint_file_roundtrip);
    ("kill-resume determinism: resumed run equals straight run", `Quick,
     test_resume_matches_straight_run);
    ("corrupt or truncated checkpoint rejected", `Quick, test_corrupt_checkpoint_rejected);
    ("zero deadline stops gracefully and resumes identically", `Quick,
     test_deadline_stops_gracefully_and_resumes);
    ("no deadline: full budget, no flag", `Quick, test_no_deadline_runs_to_budget);
  ]

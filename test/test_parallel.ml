(* Tests for the domain pool and the parallel generation paths: pool
   results arrive in task order with deterministic failures, generated
   structures are bit-identical at any job count — including across a
   kill/resume — and pooled audits/repairs reproduce the sequential
   outcome exactly. *)

open Mps_netlist
open Mps_core
module Pool = Mps_parallel.Pool

let check_bool = Alcotest.(check bool)

(* pool basics *)

let test_map_order () =
  let tasks = Array.init 97 Fun.id in
  let expected = Array.map (fun i -> i * i) tasks in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          check_bool
            (Printf.sprintf "map with %d jobs preserves task order" jobs)
            true
            (Pool.map pool (fun i -> i * i) tasks = expected)))
    [ 1; 2; 3; 4 ]

let test_map_exception_lowest_index () =
  Pool.with_pool ~jobs:4 (fun pool ->
      match
        Pool.map pool
          (fun i -> if i >= 5 then failwith (string_of_int i) else i)
          (Array.init 64 Fun.id)
      with
      | _ -> Alcotest.fail "expected the batch to raise"
      | exception Failure msg ->
        check_bool "lowest failing task index re-raised" true (msg = "5"))

let test_map_reduce_fold_order () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let r =
        Pool.map_reduce pool ~map:string_of_int
          ~fold:(fun acc s -> acc ^ "," ^ s)
          ~init:"" (Array.init 10 Fun.id)
      in
      check_bool "folded sequentially in task order" true (r = ",0,1,2,3,4,5,6,7,8,9"))

let test_pool_misuse_rejected () =
  check_bool "jobs = 0 rejected" true
    (try
       ignore (Pool.create ~jobs:0 ());
       false
     with Invalid_argument _ -> true);
  check_bool "default_jobs at least 1" true (Pool.default_jobs () >= 1);
  check_bool "chunk = 0 rejected" true
    (Pool.with_pool ~jobs:2 (fun pool ->
         try
           ignore (Pool.map_chunked pool ~chunk:0 (fun ~worker:_ i -> i) [| 1 |]);
           false
         with Invalid_argument _ -> true));
  (* shutdown is idempotent *)
  let pool = Pool.create ~jobs:2 () in
  Pool.shutdown pool;
  Pool.shutdown pool

(* map_chunked: any (jobs, chunk) pair delivers results in task order,
   and every task sees a worker slot inside [0, jobs). *)
let test_map_chunked_order_and_slots () =
  let n = 101 in
  let tasks = Array.init n Fun.id in
  let expected = Array.map (fun i -> 3 * i) tasks in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs (fun pool ->
          List.iter
            (fun chunk ->
              let slots = Array.make n (-1) in
              let got =
                Pool.map_chunked pool ~chunk
                  (fun ~worker i ->
                    slots.(i) <- worker;
                    3 * i)
                  tasks
              in
              check_bool
                (Printf.sprintf "jobs=%d chunk=%d results in task order" jobs chunk)
                true (got = expected);
              check_bool
                (Printf.sprintf "jobs=%d chunk=%d worker slots in range" jobs chunk)
                true
                (Array.for_all (fun w -> w >= 0 && w < jobs) slots))
            [ 1; 3; 64; 200 ]))
    [ 1; 2; 3 ]

(* Scheduler counters: every task is accounted to exactly one worker,
   and reset_stats zeroes the lot. *)
let test_pool_stats_accounting () =
  Pool.with_pool ~jobs:3 (fun pool ->
      Pool.reset_stats pool;
      let n = 57 in
      ignore (Pool.map_chunked pool ~chunk:2 (fun ~worker:_ i -> i) (Array.init n Fun.id));
      let stats = pool |> Pool.stats in
      let total_tasks = Array.fold_left (fun acc s -> acc + s.Pool.tasks) 0 stats in
      let total_chunks = Array.fold_left (fun acc s -> acc + s.Pool.chunks) 0 stats in
      check_bool "tasks across workers sum to the batch size" true (total_tasks = n);
      check_bool "at least one chunk was claimed" true (total_chunks >= 1);
      check_bool "chunks never exceed tasks" true (total_chunks <= total_tasks);
      check_bool "busy time is non-negative" true
        (Array.for_all (fun s -> s.Pool.busy_seconds >= 0.0) stats);
      Pool.reset_stats pool;
      check_bool "reset_stats zeroes every counter" true
        (Array.for_all
           (fun s ->
             s.Pool.tasks = 0 && s.Pool.chunks = 0 && s.Pool.steals = 0
             && s.Pool.batches = 0 && s.Pool.minor_words = 0.0
             && s.Pool.busy_seconds = 0.0)
           (Pool.stats pool)))

(* Auto-tuned scheduling grain ({!Pool.chunk_divisor}): starts at 8,
   moves only on default-grain parallel batches, doubles under heavy
   stealing until the clamp at 32, and never changes what a batch
   returns. *)
let test_chunk_divisor_tuning () =
  Pool.with_pool ~jobs:1 (fun pool ->
      check_bool "divisor starts at 8" true (Pool.chunk_divisor pool = 8);
      ignore (Pool.map pool (fun i -> i + 1) (Array.init 300 Fun.id));
      check_bool "sequential batches never retune" true (Pool.chunk_divisor pool = 8));
  Pool.with_pool ~jobs:2 (fun pool ->
      (* an explicit grain bypasses the tuner outright *)
      ignore
        (Pool.map_chunked pool ~chunk:1 (fun ~worker:_ i -> i) (Array.init 256 Fun.id));
      check_bool "explicit chunk never retunes" true (Pool.chunk_divisor pool = 8);
      (* Force heavy stealing, deterministically: task 0 refuses to
         finish until the first task of the *second* chunk of its own
         worker's range has run.  Its owner is stuck behind task 0, and
         a thief pops chunks off the *back* of the victim's range — so
         that task runs only once the thief has stolen every chunk of
         the range but the first.  Each round is therefore a
         steal-heavy batch (at least 7 of 16 claims are steals): the
         divisor doubles until the clamp, and the results never
         change. *)
      let n = 64 in
      let tasks = Array.init n Fun.id in
      let expected = Array.map (fun i -> i * 7) tasks in
      for round = 1 to 5 do
        let chunk = max 1 (n / (2 * Pool.chunk_divisor pool)) in
        let unblock = Atomic.make false in
        let f i =
          if i = chunk then Atomic.set unblock true
          else if i = 0 then
            while not (Atomic.get unblock) do
              Domain.cpu_relax ()
            done;
          i * 7
        in
        let got = Pool.map pool f tasks in
        check_bool
          (Printf.sprintf "round %d results in task order" round)
          true (got = expected);
        let d = Pool.chunk_divisor pool in
        check_bool
          (Printf.sprintf "round %d divisor within [2, 32]" round)
          true
          (d >= 2 && d <= 32)
      done;
      check_bool "steals were forced" true
        (Array.exists (fun s -> s.Pool.steals > 0) (Pool.stats pool));
      check_bool "steal-heavy batches tuned the grain to the clamp" true
        (Pool.chunk_divisor pool = 32);
      (* the tuned pool still returns bit-identical results *)
      let big = Array.init 257 Fun.id in
      check_bool "tuned pool matches sequential results" true
        (Pool.map pool (fun i -> (i * 31) land 1023) big
        = Array.map (fun i -> (i * 31) land 1023) big))

(* default_jobs cap: ~max_jobs beats MPS_MAX_JOBS beats the built-in 8.
   The expected value is computed against the host's own domain count,
   so the assertions are exact on any machine. *)
let test_default_jobs_cap () =
  let expected cap = max 1 (min cap (Domain.recommended_domain_count ())) in
  let with_env value f =
    let old = Sys.getenv_opt "MPS_MAX_JOBS" in
    Unix.putenv "MPS_MAX_JOBS" value;
    Fun.protect
      ~finally:(fun () ->
        Unix.putenv "MPS_MAX_JOBS" (match old with Some v -> v | None -> ""))
      f
  in
  check_bool "built-in cap is 8" true (Pool.default_jobs () = expected 8);
  check_bool "~max_jobs caps directly" true
    (Pool.default_jobs ~max_jobs:1 () = expected 1);
  with_env "3" (fun () ->
      check_bool "MPS_MAX_JOBS caps the default" true
        (Pool.default_jobs () = expected 3);
      check_bool "~max_jobs overrides the environment" true
        (Pool.default_jobs ~max_jobs:1 () = expected 1));
  with_env "garbage" (fun () ->
      check_bool "unparseable MPS_MAX_JOBS falls back to 8" true
        (Pool.default_jobs () = expected 8));
  with_env "0" (fun () ->
      check_bool "non-positive MPS_MAX_JOBS falls back to 8" true
        (Pool.default_jobs () = expected 8))

(* The annealers' move-draw path must stay allocation-free: on OCaml 5
   every minor collection is a stop-the-world across all domains, so a
   single boxed float per move would serialize the whole pool.  The
   Move_lut draw / draw_shift / clamp path is exercised 100k times and
   the per-draw minor-heap cost asserted at zero (the tiny constant
   slack absorbs the counter reads' own boxing). *)
let test_move_lut_draws_do_not_allocate () =
  let module Move_lut = Mps_anneal.Move_lut in
  let module Rng = Mps_rng.Rng in
  let lut = Move_lut.make ~n:16 ~lo:(fun i -> i) ~hi:(fun i -> 3 * i + 7) in
  let rng = Rng.create ~seed:11 in
  let sink = ref 0 in
  let exercise iters =
    for i = 0 to iters - 1 do
      let a = i land 15 in
      sink := !sink + Move_lut.draw lut rng a;
      sink := !sink + Move_lut.draw_shift lut rng a ~cur:(i land 31) ~max_shift:4;
      sink := !sink + Move_lut.clamp lut a (i * 7)
    done
  in
  exercise 1000 (* warm-up: code paths compiled, rng state touched *);
  let iters = 100_000 in
  let before = Gc.minor_words () in
  exercise iters;
  let delta = Gc.minor_words () -. before in
  ignore (Sys.opaque_identity !sink);
  check_bool
    (Printf.sprintf "move draws allocated %.0f minor words over %dk draws" delta
       (3 * iters / 1000))
    true
    (delta < 256.0)

(* parallel generation: bit-determinism across job counts *)

let par_config =
  {
    Generator.fast_config with
    Generator.explorer_iterations = 6;
    bdio = { Bdio.default_config with Bdio.iterations = 40 };
    coverage_target = 2.0;
    max_placements = 1000;
    backup_iterations = 200;
    refine_iterations = 60;
  }

let bytes_at ~jobs circuit =
  Codec.to_string (fst (Generator.generate_par ~config:par_config ~jobs circuit))

(* The acceptance property on three Table 1 circuits: the structure a
   parallel run produces is a pure function of the config, never of the
   worker count.  Jobs 2 and 3 split the walk ranges unevenly (and 3
   does not divide the restart counts), 8 oversubscribes this class of
   host — each a distinct scheduling regime, all required to reproduce
   the 1-job bytes. *)
let test_jobs_invariant_structures () =
  List.iter
    (fun circuit ->
      let one = bytes_at ~jobs:1 circuit in
      List.iter
        (fun jobs ->
          check_bool
            (Printf.sprintf "%s: %d jobs bit-identical to 1 job" circuit.Circuit.name
               jobs)
            true
            (bytes_at ~jobs circuit = one))
        [ 2; 3; 8 ])
    [ Benchmarks.circ01; Benchmarks.circ02; Benchmarks.circ06 ]

let with_checkpoint_file f =
  let path = Filename.temp_file "mps_par_ckpt" ".mpsc" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () -> f path)

(* Kill a 4-job run at time zero, resume it with 3 jobs, and demand the
   same bytes an uninterrupted 2-job run produces: determinism must
   survive both the interruption and a job-count change across it. *)
let test_par_kill_resume_matches () =
  let circuit = Benchmarks.circ02 in
  with_checkpoint_file (fun path ->
      let straight = bytes_at ~jobs:2 circuit in
      let config =
        {
          par_config with
          Generator.max_seconds = Some 0.0;
          checkpoint_path = Some path;
          checkpoint_every = 2;
        }
      in
      let _, stats = Generator.generate_par ~config ~jobs:4 circuit in
      check_bool "deadline flagged" true stats.Generator.deadline_hit;
      check_bool "final checkpoint forced" true (Sys.file_exists path);
      let cp = Checkpoint.load ~circuit ~path in
      check_bool "checkpoint carries the par section" true (cp.Checkpoint.par <> None);
      let cp' = Checkpoint.of_string ~circuit (Checkpoint.to_string cp) in
      check_bool "par checkpoint round-trips bit-exactly" true
        (Checkpoint.to_string cp = Checkpoint.to_string cp');
      check_bool "sequential resume refuses a par checkpoint" true
        (try
           ignore (Generator.resume ~config:par_config cp);
           false
         with Invalid_argument _ -> true);
      let resumed, rstats = Generator.resume_par ~config:par_config ~jobs:3 cp in
      check_bool "kill at 4 jobs + resume at 3 equals the straight run" true
        (Codec.to_string resumed = straight);
      check_bool "resumed run ran to its budget" true
        (not rstats.Generator.deadline_hit))

(* pooled audit / repair reproduce the sequential outcome *)

(* A structure with real findings: one placement's recorded cost is
   drifted (Degraded, repairable in place) and — when the circuit has
   more than one block — another placement's coordinates are piled onto
   a corner (Fatal, quarantined then re-annealed). *)
let flawed_structure =
  lazy
    (let s = fst (Generator.generate ~config:par_config Benchmarks.circ01) in
     let circuit = Structure.circuit s in
     let stored = Array.map Fun.id (Structure.placements s) in
     stored.(0) <-
       { (stored.(0)) with Stored.best_cost = stored.(0).Stored.best_cost +. 500.0 };
     if Array.length stored > 1 && Stored.n_blocks stored.(1) > 1 then begin
       let p = stored.(1).Stored.placement in
       let placement =
         {
           p with
           Mps_placement.Placement.coords =
             Array.map (fun _ -> (0, 0)) p.Mps_placement.Placement.coords;
         }
       in
       stored.(1) <- { (stored.(1)) with Stored.placement = placement }
     end;
     Structure.of_placements ~backup:(Structure.backup s) circuit stored)

let test_pooled_audit_identical () =
  let s = Lazy.force flawed_structure in
  let seq = Audit.run s in
  check_bool "flawed structure has findings" false (Audit.clean seq);
  Pool.with_pool ~jobs:4 (fun pool ->
      let par = Audit.run ~pool s in
      check_bool "pooled audit report identical to sequential" true
        (Audit.to_json par = Audit.to_json seq))

let test_pooled_repair_identical () =
  let s = Lazy.force flawed_structure in
  let config = { Repair.default_config with Repair.reanneal_iterations = 400 } in
  let seq = Repair.run ~config s in
  Pool.with_pool ~jobs:4 (fun pool ->
      let par = Repair.run ~pool ~config s in
      check_bool "pooled repair yields the identical structure" true
        (Codec.to_string par.Repair.structure = Codec.to_string seq.Repair.structure);
      check_bool "pooled repair after-report identical" true
        (Audit.to_json par.Repair.after = Audit.to_json seq.Repair.after);
      check_bool "same quarantine set" true
        (par.Repair.quarantined = seq.Repair.quarantined))

let suite =
  [
    ("pool map preserves task order at any job count", `Quick, test_map_order);
    ("pool re-raises the lowest failing task", `Quick, test_map_exception_lowest_index);
    ("map_reduce folds in task order", `Quick, test_map_reduce_fold_order);
    ("pool misuse rejected, shutdown idempotent", `Quick, test_pool_misuse_rejected);
    ("map_chunked keeps task order, slots in range", `Quick,
     test_map_chunked_order_and_slots);
    ("scheduler stats account for every task", `Quick, test_pool_stats_accounting);
    ("default_jobs cap: max_jobs > MPS_MAX_JOBS > 8", `Quick, test_default_jobs_cap);
    ("auto-tuned grain: doubles under stealing, clamps, bypassed, identical", `Quick,
     test_chunk_divisor_tuning);
    ("move LUT draw path allocates nothing", `Quick,
     test_move_lut_draws_do_not_allocate);
    ("parallel generation bit-identical at 1/2/3/8 jobs", `Quick,
     test_jobs_invariant_structures);
    ("kill at 4 jobs, resume at 3: equals the straight run", `Quick,
     test_par_kill_resume_matches);
    ("pooled audit equals sequential audit", `Quick, test_pooled_audit_identical);
    ("pooled repair equals sequential repair", `Quick, test_pooled_repair_identical);
  ]

(* Tests for the experiment drivers and the table renderer.  Experiment
   runs use the Quick budget and the small circuits so the suite stays
   fast. *)

open Mps_netlist
open Mps_core
open Mps_experiments

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains_sub sub s =
  let n = String.length sub in
  let rec loop i = i + n <= String.length s && (String.sub s i n = sub || loop (i + 1)) in
  loop 0

(* Text_table *)

let test_table_alignment () =
  let t =
    Text_table.render ~headers:[ "a"; "long header" ]
      ~rows:[ [ "wide cell"; "x" ]; [ "y"; "z" ] ]
  in
  let lines = String.split_on_char '\n' t |> List.filter (fun l -> l <> "") in
  check_int "four lines" 4 (List.length lines);
  let widths = List.map String.length lines in
  check_bool "all lines same width" true
    (match widths with w :: rest -> List.for_all (( = ) w) rest | [] -> false)

let test_table_ragged () =
  Alcotest.check_raises "ragged" (Invalid_argument "Text_table.render: ragged row")
    (fun () -> ignore (Text_table.render ~headers:[ "a"; "b" ] ~rows:[ [ "1" ] ]))

let test_durations () =
  Alcotest.(check string) "ms" "420ms" (Text_table.seconds 0.42);
  Alcotest.(check string) "s" "2.41s" (Text_table.seconds 2.41);
  Alcotest.(check string) "m" "3m12s" (Text_table.seconds 192.0);
  Alcotest.(check string) "h" "1h02m" (Text_table.seconds 3725.0);
  Alcotest.(check string) "us" "85us" (Text_table.microseconds 85e-6);
  Alcotest.(check string) "ms scale" "1.2ms" (Text_table.microseconds 1.2e-3)

(* Budgets *)

let test_budget_scales_with_size () =
  let small = Experiments.generator_config Experiments.Full Benchmarks.circ01 in
  let large = Experiments.generator_config Experiments.Full Benchmarks.benchmark24 in
  check_bool "larger circuit, more exploration" true
    (large.Generator.explorer_iterations > small.Generator.explorer_iterations)

let test_quick_cheaper_than_full () =
  let q = Experiments.generator_config Experiments.Quick Benchmarks.mixer in
  let f = Experiments.generator_config Experiments.Full Benchmarks.mixer in
  check_bool "fewer explorer steps" true
    (q.Generator.explorer_iterations < f.Generator.explorer_iterations);
  check_bool "fewer bdio steps" true
    (q.Generator.bdio.Bdio.iterations < f.Generator.bdio.Bdio.iterations)

(* Table 1 *)

let test_table1_report () =
  let t = Experiments.table1 () in
  List.iter
    (fun c -> check_bool (c.Circuit.name ^ " listed") true (contains_sub c.Circuit.name t))
    Benchmarks.all

(* Table 2 (single small circuit) *)

let test_table2_row () =
  let row, structure = Experiments.table2_row ~budget:Experiments.Quick Benchmarks.circ01 in
  check_bool "placements positive" true (row.Experiments.placements >= 1);
  check_int "matches structure" (Structure.n_explored structure) row.Experiments.placements;
  check_bool "generation time positive" true (row.Experiments.generation_seconds > 0.0);
  check_bool "instantiation sub-millisecond" true
    (row.Experiments.instantiation_seconds < 1e-3);
  check_bool "fallback rate in [0,1]" true
    (row.Experiments.fallback_rate >= 0.0 && row.Experiments.fallback_rate <= 1.0)

let test_table2_report_subset () =
  let rows, report =
    Experiments.table2 ~budget:Experiments.Quick ~circuits:[ Benchmarks.circ01; Benchmarks.circ02 ] ()
  in
  check_int "two rows" 2 (List.length rows);
  check_bool "both named" true (contains_sub "circ01" report && contains_sub "circ02" report)

(* Probe workload *)

let test_probe_dims_valid () =
  let structure, _ = Generator.generate ~config:Generator.fast_config Benchmarks.circ01 in
  let probes = Experiments.probe_dims ~seed:3 ~n:200 structure in
  check_int "count" 200 (Array.length probes);
  Array.iter
    (fun dims -> check_bool "inside designer space" true (Circuit.dims_valid Benchmarks.circ01 dims))
    probes

(* Figure 6 on the quick budget *)

let figure6 = lazy (Experiments.figure6 ~budget:Experiments.Quick ())

let test_figure6_envelope () =
  let points, report = Lazy.force figure6 in
  check_bool "sweep non-empty" true (points <> []);
  check_bool "report mentions envelope" true (contains_sub "envelope" report);
  (* Averaged over the sweep, the structure's answers must beat the
     average cost of committing to an arbitrary fixed placement (the
     paper's top plot): the per-point choice is driven by regional
     average costs, so the claim is statistical, not pointwise. *)
  let mps_total = ref 0.0 and curve_total = ref 0.0 and n_points = ref 0 in
  List.iter
    (fun p ->
      let n = Array.length p.Experiments.per_placement in
      let mean =
        Array.fold_left (fun acc (_, c) -> acc +. c) 0.0 p.Experiments.per_placement
        /. float_of_int n
      in
      mps_total := !mps_total +. p.Experiments.mps_cost;
      curve_total := !curve_total +. mean;
      incr n_points)
    points;
  check_bool "mps beats the average fixed choice over the sweep" true
    (!mps_total <= !curve_total)

let test_figure6_covers_some_points () =
  let points, _ = Lazy.force figure6 in
  let covered =
    List.length
      (List.filter
         (fun p ->
           match p.Experiments.mps_choice with
           | Structure.Stored_placement _ -> true
           | Structure.Fallback | Structure.Out_of_domain -> false)
         points)
  in
  check_bool "sweep crosses stored boxes" true (covered > 0)

(* Reports smoke (quick, small circuits where selectable) *)

let test_figure5_report () =
  let r = Experiments.figure5 ~budget:Experiments.Quick () in
  check_bool "three panels" true
    (contains_sub "(a)" r && contains_sub "(b)" r && contains_sub "(c)" r)

let test_ablation_shrink_report () =
  let r = Experiments.ablation_shrink ~budget:Experiments.Quick () in
  check_bool "three rules" true
    (contains_sub "cost-ratio" r && contains_sub "fixed" r && contains_sub "no shrink" r)

let suite =
  [
    ("text table: alignment", `Quick, test_table_alignment);
    ("text table: ragged rows rejected", `Quick, test_table_ragged);
    ("durations render", `Quick, test_durations);
    ("budget scales with circuit size", `Quick, test_budget_scales_with_size);
    ("quick budget cheaper than full", `Quick, test_quick_cheaper_than_full);
    ("table1 lists all circuits", `Quick, test_table1_report);
    ("table2 row metrics", `Quick, test_table2_row);
    ("table2 report over a subset", `Quick, test_table2_report_subset);
    ("probe workload stays in the designer space", `Quick, test_probe_dims_valid);
    ("figure6: MPS sits on the lower envelope", `Quick, test_figure6_envelope);
    ("figure6: sweep crosses stored boxes", `Quick, test_figure6_covers_some_points);
    ("figure5: three panels", `Quick, test_figure5_report);
    ("ablation: shrink rules compared", `Quick, test_ablation_shrink_report);
  ]

(* End-to-end invariants across the whole pipeline: for each benchmark
   circuit, generate a structure at a small budget and check that every
   claim the library makes actually holds on the compiled artifact —
   including after save/load round-trips and incremental extension. *)

open Mps_geometry
open Mps_netlist
open Mps_core

let check_bool = Alcotest.(check bool)

let tiny_config =
  {
    Generator.fast_config with
    Generator.explorer_iterations = 8;
    bdio = { Generator.fast_config.Generator.bdio with Bdio.iterations = 60 };
    max_placements = 25;
    backup_iterations = 300;
  }

let structures =
  lazy
    (List.map
       (fun c -> (c, fst (Generator.generate ~config:tiny_config c)))
       Benchmarks.all)

let for_all_structures f () =
  List.iter (fun (c, s) -> f c s) (Lazy.force structures)

let test_boxes_disjoint c structure =
  let ps = Structure.placements structure in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j then
            check_bool
              (Printf.sprintf "%s: boxes %d/%d disjoint" c.Circuit.name i j)
              true
              (not (Dimbox.overlaps a.Stored.box b.Stored.box)))
        ps)
    ps

let test_hits_are_legal c structure =
  let die_w, die_h = Structure.die structure in
  let probes = Mps_experiments.Experiments.probe_dims ~seed:31 ~n:200 structure in
  Array.iter
    (fun dims ->
      match Structure.query structure dims with
      | Structure.Stored_placement _, s ->
        let rects = Stored.instantiate_auto s dims in
        check_bool (c.Circuit.name ^ ": hit is overlap-free") true
          (Rect.any_overlap rects = None);
        (* ordinary placements answer raw coordinates inside the die;
           template-like pieces re-pack outside their expansion box *)
        if not s.Stored.template_like then
          check_bool (c.Circuit.name ^ ": plain hit instantiates legally") true
            (Mps_cost.Cost.is_legal ~die_w ~die_h rects)
      | (Structure.Fallback | Structure.Out_of_domain), _ ->
        (* fallback re-pack is overlap-free by construction *)
        check_bool (c.Circuit.name ^ ": fallback overlap-free") true
          (Rect.any_overlap (Structure.instantiate structure dims) = None))
    probes

let test_boxes_inside_designer_space c structure =
  let bounds = Circuit.dim_bounds c in
  Array.iter
    (fun s ->
      check_bool (c.Circuit.name ^ ": box within designer bounds") true
        (Dimbox.contains_box ~outer:bounds ~inner:s.Stored.box);
      check_bool (c.Circuit.name ^ ": expansion within designer bounds") true
        (Dimbox.contains_box ~outer:bounds ~inner:s.Stored.expansion))
    (Structure.placements structure)

let test_costs_consistent c structure =
  Array.iter
    (fun s ->
      check_bool (c.Circuit.name ^ ": avg >= best") true
        (s.Stored.avg_cost >= s.Stored.best_cost -. 1e-9);
      check_bool (c.Circuit.name ^ ": best dims in box") true
        (Dimbox.contains s.Stored.box s.Stored.best_dims))
    (Structure.placements structure)

let test_codec_roundtrip_all c structure =
  let reloaded = Codec.of_string ~circuit:c (Codec.to_string structure) in
  let probes = Mps_experiments.Experiments.probe_dims ~seed:37 ~n:100 structure in
  Array.iter
    (fun dims ->
      let a1, _ = Structure.query structure dims in
      let a2, _ = Structure.query reloaded dims in
      check_bool (c.Circuit.name ^ ": reload answers agree") true (a1 = a2))
    probes

let test_query_equals_linear c structure =
  let probes = Mps_experiments.Experiments.probe_dims ~seed:41 ~n:200 structure in
  Array.iter
    (fun dims ->
      let a1, _ = Structure.query structure dims in
      let a2, _ = Structure.query_linear structure dims in
      check_bool (c.Circuit.name ^ ": compiled = linear") true (a1 = a2))
    probes

(* Quality floor: every explored placement must beat the backup template
   over its own validity box (the generator's admission test, re-checked
   here on an independent sample with tolerance for sampling noise). *)
let test_explored_beats_backup c structure =
  let die_w, die_h = Structure.die structure in
  let backup = Structure.backup structure in
  let rng = Mps_rng.Rng.create ~seed:53 in
  let cost rects = Mps_cost.Cost.total c ~die_w ~die_h rects in
  Array.iter
    (fun s ->
      if not s.Stored.template_like then begin
        let samples = 24 in
        let own = ref 0.0 and tpl = ref 0.0 in
        for _ = 1 to samples do
          let dims = Dimbox.random_dims rng s.Stored.box in
          own := !own +. cost (Stored.instantiate s dims);
          tpl := !tpl +. cost (Stored.instantiate_repacked backup dims)
        done;
        check_bool
          (c.Circuit.name ^ ": explored placement near or below template cost")
          true
          (!own <= !tpl *. 1.15)
      end)
    (Structure.placements structure)

(* Incremental extension *)

let test_extend_grows () =
  let circuit = Benchmarks.circ02 in
  let structure, _ = Generator.generate ~config:tiny_config circuit in
  let before = Structure.n_placements structure in
  let config =
    { tiny_config with Generator.seed = 77; explorer_iterations = 10; max_placements = 60 }
  in
  let extended, stats = Generator.extend ~config structure in
  check_bool "placement count grew" true (Structure.n_placements extended >= before);
  check_bool "coverage did not shrink much" true
    (stats.Generator.coverage >= 0.0);
  (* invariants still hold *)
  let ps = Structure.placements extended in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j then
            check_bool "extended boxes disjoint" true
              (not (Dimbox.overlaps a.Stored.box b.Stored.box)))
        ps)
    ps

let test_extend_preserves_die () =
  let circuit = Benchmarks.circ02 in
  let structure, _ = Generator.generate ~config:tiny_config circuit in
  let extended, _ = Generator.extend ~config:{ tiny_config with Generator.seed = 78 } structure in
  check_bool "same die" true (Structure.die structure = Structure.die extended)

let test_to_builder_roundtrip () =
  let circuit = Benchmarks.circ01 in
  let structure, _ = Generator.generate ~config:tiny_config circuit in
  let rebuilt = Structure.compile ~backup:(Structure.backup structure) (Structure.to_builder structure) in
  Alcotest.(check int) "placement count preserved" (Structure.n_placements structure)
    (Structure.n_placements rebuilt)

(* Coverage cross-check and description *)

let test_coverage_sampled_agrees () =
  (* Monte-Carlo estimate vs the exact disjoint-box sum.  Coverage per
     circuit is small, so compare with an absolute tolerance derived
     from the binomial standard error. *)
  List.iter
    (fun (_, structure) ->
      let exact = Structure.coverage structure in
      let sampled = Structure.coverage_sampled ~seed:71 ~samples:4000 structure in
      let sigma = sqrt (exact *. (1.0 -. exact) /. 4000.0) in
      check_bool "estimate within 5 sigma + eps" true
        (abs_float (sampled -. exact) <= (5.0 *. sigma) +. 0.01))
    (Lazy.force structures)

let test_describe_mentions_counts () =
  let circuit = Benchmarks.circ01 in
  let structure, _ = Generator.generate ~config:tiny_config circuit in
  let d = Structure.describe structure in
  let contains sub =
    let n = String.length sub in
    let rec loop i = i + n <= String.length d && (String.sub d i n = sub || loop (i + 1)) in
    loop 0
  in
  check_bool "names circuit" true (contains circuit.Circuit.name);
  check_bool "mentions coverage" true (contains "coverage");
  check_bool "mentions interval objects" true (contains "interval objects")

(* Nearest-box fallback *)

let test_nearest_agrees_on_hits () =
  let circuit = Benchmarks.circ01 in
  let structure, _ = Generator.generate ~config:tiny_config circuit in
  let probes = Mps_experiments.Experiments.probe_dims ~seed:43 ~n:200 structure in
  Array.iter
    (fun dims ->
      match Structure.query structure dims with
      | Structure.Stored_placement id, _ ->
        Alcotest.(check int) "nearest of covered is the cover" id (Structure.nearest structure dims)
      | (Structure.Fallback | Structure.Out_of_domain), _ ->
        let id = Structure.nearest structure dims in
        check_bool "nearest id valid" true (id >= 0 && id < Structure.n_placements structure))
    probes

let test_instantiate_nearest_overlap_free () =
  let circuit = Benchmarks.circ01 in
  let structure, _ = Generator.generate ~config:tiny_config circuit in
  let probes = Mps_experiments.Experiments.probe_dims ~seed:47 ~n:200 structure in
  Array.iter
    (fun dims ->
      let rects = Structure.instantiate_nearest structure dims in
      check_bool "overlap-free" true (Rect.any_overlap rects = None);
      Array.iteri
        (fun i r ->
          check_bool "requested dims" true
            (r.Rect.w = Dims.width dims i && r.Rect.h = Dims.height dims i))
        rects)
    probes

let suite =
  [
    ("all circuits: stored boxes disjoint", `Slow, for_all_structures test_boxes_disjoint);
    ("all circuits: query hits are legal", `Slow, for_all_structures test_hits_are_legal);
    ("all circuits: boxes within designer space", `Slow,
     for_all_structures test_boxes_inside_designer_space);
    ("all circuits: stored costs consistent", `Slow, for_all_structures test_costs_consistent);
    ("all circuits: codec round-trip", `Slow, for_all_structures test_codec_roundtrip_all);
    ("all circuits: compiled query equals linear", `Slow,
     for_all_structures test_query_equals_linear);
    ("all circuits: explored placements beat the template", `Slow,
     for_all_structures test_explored_beats_backup);
    ("extend grows the structure", `Quick, test_extend_grows);
    ("extend preserves the die", `Quick, test_extend_preserves_die);
    ("to_builder round-trips", `Quick, test_to_builder_roundtrip);
    ("sampled coverage agrees with exact", `Slow, test_coverage_sampled_agrees);
    ("describe summarizes the structure", `Quick, test_describe_mentions_counts);
    ("nearest agrees with query on hits", `Quick, test_nearest_agrees_on_hits);
    ("instantiate_nearest is overlap-free", `Quick, test_instantiate_nearest_overlap_free);
  ]

(* Tests for the placement-index bitsets. *)

open Mps_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_empty_full () =
  let e = Bitset.create ~capacity:70 in
  check_bool "empty" true (Bitset.is_empty e);
  check_int "cardinal 0" 0 (Bitset.cardinal e);
  let f = Bitset.full ~capacity:70 in
  check_int "full cardinal" 70 (Bitset.cardinal f);
  check_bool "full has 0" true (Bitset.mem f 0);
  check_bool "full has 69" true (Bitset.mem f 69);
  check_bool "tail masked" true (Bitset.cardinal (Bitset.full ~capacity:1) = 1)

let test_zero_capacity () =
  let e = Bitset.create ~capacity:0 in
  check_bool "empty" true (Bitset.is_empty e);
  let f = Bitset.full ~capacity:0 in
  check_int "full of 0" 0 (Bitset.cardinal f)

let test_add_remove_mem () =
  let s = Bitset.create ~capacity:100 in
  Bitset.add s 0;
  Bitset.add s 63;
  Bitset.add s 64;
  Bitset.add s 99;
  check_bool "mem 0" true (Bitset.mem s 0);
  check_bool "mem 63" true (Bitset.mem s 63);
  check_bool "mem 64" true (Bitset.mem s 64);
  check_bool "mem 99" true (Bitset.mem s 99);
  check_bool "not mem 1" false (Bitset.mem s 1);
  check_int "cardinal" 4 (Bitset.cardinal s);
  Bitset.remove s 63;
  check_bool "removed" false (Bitset.mem s 63);
  check_int "cardinal after remove" 3 (Bitset.cardinal s)

let test_out_of_range () =
  let s = Bitset.create ~capacity:10 in
  Alcotest.check_raises "add -1" (Invalid_argument "Bitset: index -1 out of [0, 10)")
    (fun () -> Bitset.add s (-1));
  Alcotest.check_raises "mem 10" (Invalid_argument "Bitset: index 10 out of [0, 10)")
    (fun () -> ignore (Bitset.mem s 10))

let test_inter_into () =
  let a = Bitset.of_list ~capacity:100 [ 1; 5; 64; 70; 99 ] in
  let b = Bitset.of_list ~capacity:100 [ 5; 64; 98 ] in
  Bitset.inter_into a b;
  Alcotest.(check (list int)) "intersection" [ 5; 64 ] (Bitset.to_list a);
  let c = Bitset.create ~capacity:5 in
  Alcotest.check_raises "capacity mismatch"
    (Invalid_argument "Bitset.inter_into: capacity mismatch") (fun () ->
      Bitset.inter_into a c)

let test_choose_iter () =
  check_bool "choose empty" true (Bitset.choose (Bitset.create ~capacity:10) = None);
  let s = Bitset.of_list ~capacity:200 [ 150; 7; 64 ] in
  check_bool "choose smallest" true (Bitset.choose s = Some 7);
  Alcotest.(check (list int)) "iter ascending" [ 7; 64; 150 ] (Bitset.to_list s)

let test_clear () =
  let s = Bitset.of_list ~capacity:130 [ 0; 63; 64; 129 ] in
  Bitset.clear s;
  check_bool "empty after clear" true (Bitset.is_empty s);
  check_int "cardinal 0" 0 (Bitset.cardinal s);
  Bitset.add s 64;
  Alcotest.(check (list int)) "reusable" [ 64 ] (Bitset.to_list s)

let test_copy_independent () =
  let a = Bitset.of_list ~capacity:10 [ 2 ] in
  let b = Bitset.copy a in
  Bitset.add b 3;
  check_bool "a unchanged" false (Bitset.mem a 3);
  check_bool "b changed" true (Bitset.mem b 3)

let test_equal () =
  let a = Bitset.of_list ~capacity:80 [ 1; 79 ] in
  let b = Bitset.of_list ~capacity:80 [ 79; 1 ] in
  check_bool "equal" true (Bitset.equal a b);
  Bitset.add b 2;
  check_bool "not equal" false (Bitset.equal a b)

(* Property: bitset ops agree with list-set semantics. *)
let prop_of_list_roundtrip =
  QCheck.Test.make ~name:"bitset of_list/to_list round-trips" ~count:300
    QCheck.(list (int_range 0 99))
    (fun l ->
      let s = Bitset.of_list ~capacity:100 l in
      Bitset.to_list s = List.sort_uniq Int.compare l)

let prop_inter_matches_lists =
  QCheck.Test.make ~name:"bitset intersection matches list intersection" ~count:300
    QCheck.(pair (list (int_range 0 99)) (list (int_range 0 99)))
    (fun (la, lb) ->
      let a = Bitset.of_list ~capacity:100 la in
      let b = Bitset.of_list ~capacity:100 lb in
      Bitset.inter_into a b;
      let expect =
        List.sort_uniq Int.compare (List.filter (fun x -> List.mem x lb) la)
      in
      Bitset.to_list a = expect)

let suite =
  [
    ("empty and full", `Quick, test_empty_full);
    ("zero capacity", `Quick, test_zero_capacity);
    ("add / remove / mem across word boundaries", `Quick, test_add_remove_mem);
    ("out-of-range indices raise", `Quick, test_out_of_range);
    ("inter_into", `Quick, test_inter_into);
    ("choose and ascending iteration", `Quick, test_choose_iter);
    ("clear", `Quick, test_clear);
    ("copy is independent", `Quick, test_copy_independent);
    ("equality", `Quick, test_equal);
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_of_list_roundtrip; prop_inter_matches_lists ]

(* Tests for the incremental (delta) cost engine: totals must track the
   from-scratch evaluator through arbitrary move / swap / resize
   sequences with interleaved undo, on every Table 1 circuit. *)

open Mps_geometry
open Mps_netlist
open Mps_cost
open Mps_rng

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

let random_rects rng circuit ~die_w ~die_h =
  let bounds = Circuit.dim_bounds circuit in
  Array.init (Circuit.n_blocks circuit) (fun i ->
      let wiv = Dimbox.w_interval bounds i and hiv = Dimbox.h_interval bounds i in
      let w = Rng.int_in rng (Interval.lo wiv) (Interval.hi wiv) in
      let h = Rng.int_in rng (Interval.lo hiv) (Interval.hi hiv) in
      Rect.make ~x:(Rng.int_in rng 0 (max 0 (die_w - w)))
        ~y:(Rng.int_in rng 0 (max 0 (die_h - h)))
        ~w ~h)

let make_engine ?resync_every circuit rng =
  let die_w, die_h = Circuit.default_die circuit in
  let rects = random_rects rng circuit ~die_w ~die_h in
  (Incremental.create ?resync_every circuit ~die_w ~die_h rects, rects, die_w, die_h)

(* --- unit tests ------------------------------------------------------ *)

let test_initial_matches_evaluate () =
  List.iter
    (fun circuit ->
      let rng = Rng.create ~seed:11 in
      let eng, rects, die_w, die_h = make_engine circuit rng in
      let reference = Cost.evaluate circuit ~die_w ~die_h rects in
      check_float circuit.Circuit.name reference.Cost.total (Incremental.total eng);
      let b = Incremental.breakdown eng in
      check_int "bbox" reference.Cost.bbox_area b.Cost.bbox_area;
      check_int "overlap" reference.Cost.overlap_area b.Cost.overlap_area;
      check_int "oob" reference.Cost.oob_area b.Cost.oob_area;
      check_float "hpwl" reference.Cost.hpwl b.Cost.hpwl)
    Benchmarks.all

let test_staged_then_undo_restores () =
  let circuit = Benchmarks.circ06 in
  let rng = Rng.create ~seed:3 in
  let eng, rects, die_w, die_h = make_engine circuit rng in
  let before = Incremental.total eng in
  Incremental.move_block eng 0 ~x:1 ~y:2;
  Incremental.resize_block eng 1 ~w:9 ~h:7;
  Incremental.swap_blocks eng 0 2;
  check_bool "staged ops pending" true (Incremental.pending eng > 0);
  Incremental.undo eng;
  check_int "nothing pending" 0 (Incremental.pending eng);
  check_float "total restored" before (Incremental.total eng);
  Array.iteri
    (fun i r ->
      check_bool "rect restored" true (Rect.equal r (Incremental.rects eng).(i)))
    rects;
  ignore die_w;
  ignore die_h

let test_commit_keeps_staged_state () =
  let circuit = Benchmarks.circ01 in
  let rng = Rng.create ~seed:4 in
  let eng, _, die_w, die_h = make_engine circuit rng in
  Incremental.move_block eng 0 ~x:3 ~y:5;
  let staged = Incremental.total eng in
  Incremental.commit eng;
  check_float "commit keeps the staged total" staged (Incremental.total eng);
  let reference = Cost.total circuit ~die_w ~die_h (Incremental.rects eng) in
  check_float "matches evaluator" reference (Incremental.total eng)

let test_swap_is_clamped_and_self_noop () =
  let circuit = Benchmarks.circ01 in
  let rng = Rng.create ~seed:5 in
  let eng, _, die_w, die_h = make_engine circuit rng in
  let x0 = Incremental.block_x eng 0 and y0 = Incremental.block_y eng 0 in
  Incremental.swap_blocks eng 0 0;
  check_int "self-swap stages nothing" 0 (Incremental.pending eng);
  Incremental.swap_blocks eng 0 1;
  List.iter
    (fun i ->
      check_bool "x clamped" true
        (Incremental.block_x eng i >= 0
        && Incremental.block_x eng i + Incremental.block_w eng i <= die_w);
      check_bool "y clamped" true
        (Incremental.block_y eng i >= 0
        && Incremental.block_y eng i + Incremental.block_h eng i <= die_h))
    [ 0; 1 ];
  Incremental.undo eng;
  check_int "x restored" x0 (Incremental.block_x eng 0);
  check_int "y restored" y0 (Incremental.block_y eng 0)

let test_batch_mode () =
  let circuit = Benchmarks.benchmark24 in
  let rng = Rng.create ~seed:6 in
  let eng, _, die_w, die_h = make_engine circuit rng in
  let before = Incremental.total eng in
  Incremental.begin_batch eng;
  for i = 0 to 14 do
    Incremental.resize_block eng i ~w:(10 + i) ~h:(12 + i)
  done;
  Incremental.end_batch eng;
  let reference = Cost.total circuit ~die_w ~die_h (Incremental.rects eng) in
  check_float "batched state matches evaluator" reference (Incremental.total eng);
  Incremental.undo eng;
  check_float "batched group undone whole" before (Incremental.total eng)

let test_argument_errors () =
  let circuit = Benchmarks.circ01 in
  let rng = Rng.create ~seed:7 in
  let eng, _, _, _ = make_engine circuit rng in
  let n = Incremental.n_blocks eng in
  Alcotest.check_raises "bad index"
    (Invalid_argument (Printf.sprintf "Incremental.move_block: block %d out of [0, %d)" n n))
    (fun () -> Incremental.move_block eng n ~x:0 ~y:0);
  Alcotest.check_raises "bad size"
    (Invalid_argument "Incremental.resize_block: non-positive size 0x3") (fun () ->
      Incremental.resize_block eng 0 ~w:0 ~h:3);
  Alcotest.check_raises "no batch open"
    (Invalid_argument "Incremental.end_batch: no batch open") (fun () ->
      Incremental.end_batch eng);
  Incremental.begin_batch eng;
  Alcotest.check_raises "batch already open"
    (Invalid_argument "Incremental.begin_batch: batch already open") (fun () ->
      Incremental.begin_batch eng);
  Alcotest.check_raises "undo inside batch"
    (Invalid_argument "Incremental.undo: close the open batch first") (fun () ->
      Incremental.undo eng);
  Incremental.end_batch eng;
  Incremental.undo eng

(* --- the agreement property ------------------------------------------ *)

(* Replay the engine's op stream on a plain rect array (including the
   swap clamping) so [Cost.evaluate] can referee every step. *)
let clamp v lo hi = max lo (min v hi)

let apply_random_op rng eng mirror ~die_w ~die_h =
  let n = Array.length mirror in
  let i = Rng.int_in rng 0 (n - 1) in
  match Rng.int_in rng 0 2 with
  | 0 ->
    (* raw move, deliberately sometimes out of die *)
    let x = Rng.int_in rng (-10) (die_w + 10) and y = Rng.int_in rng (-10) (die_h + 10) in
    Incremental.move_block eng i ~x ~y;
    mirror.(i) <- Rect.make ~x ~y ~w:mirror.(i).Rect.w ~h:mirror.(i).Rect.h
  | 1 ->
    let w = Rng.int_in rng 1 (max 2 (die_w / 2)) in
    let h = Rng.int_in rng 1 (max 2 (die_h / 2)) in
    Incremental.resize_block eng i ~w ~h;
    mirror.(i) <- Rect.make ~x:mirror.(i).Rect.x ~y:mirror.(i).Rect.y ~w ~h
  | _ ->
    let j = Rng.int_in rng 0 (n - 1) in
    Incremental.swap_blocks eng i j;
    if i <> j then begin
      let ri = mirror.(i) and rj = mirror.(j) in
      mirror.(i) <-
        Rect.make
          ~x:(clamp rj.Rect.x 0 (die_w - ri.Rect.w))
          ~y:(clamp rj.Rect.y 0 (die_h - ri.Rect.h))
          ~w:ri.Rect.w ~h:ri.Rect.h;
      mirror.(j) <-
        Rect.make
          ~x:(clamp ri.Rect.x 0 (die_w - rj.Rect.w))
          ~y:(clamp ri.Rect.y 0 (die_h - rj.Rect.h))
          ~w:rj.Rect.w ~h:rj.Rect.h
    end

let agreement_run circuit ~seed ~steps =
  let rng = Rng.create ~seed in
  (* a small resync_every so the periodic resync itself is exercised *)
  let eng, rects, die_w, die_h = make_engine ~resync_every:13 circuit rng in
  let mirror = Array.copy rects in
  let ok = ref true in
  let agree label =
    let reference = (Cost.evaluate circuit ~die_w ~die_h mirror).Cost.total in
    let drift = abs_float (reference -. Incremental.total eng) in
    if drift > 1e-6 then begin
      Printf.printf "%s %s: drift %g\n" circuit.Circuit.name label drift;
      ok := false
    end
  in
  for _ = 1 to steps do
    let saved = Array.copy mirror in
    (match Rng.int_in rng 0 3 with
    | 0 ->
      (* a batched group of resizes *)
      Incremental.begin_batch eng;
      for _ = 1 to Rng.int_in rng 2 5 do
        apply_random_op rng eng mirror ~die_w ~die_h
      done;
      Incremental.end_batch eng
    | k ->
      for _ = 0 to k - 1 do
        apply_random_op rng eng mirror ~die_w ~die_h
      done);
    agree "staged";
    if Rng.bool rng then Incremental.commit eng
    else begin
      Incremental.undo eng;
      Array.blit saved 0 mirror 0 (Array.length mirror)
    end;
    agree "after commit/undo"
  done;
  (* geometry must agree exactly, and resync must land on the evaluator
     bit for bit *)
  Array.iteri
    (fun i r -> ok := !ok && Rect.equal r (Incremental.rects eng).(i))
    mirror;
  Incremental.resync eng;
  ok := !ok && (Cost.evaluate circuit ~die_w ~die_h mirror).Cost.total = Incremental.total eng;
  !ok

let prop_agrees_with_evaluator =
  QCheck.Test.make ~name:"incremental total tracks Cost.evaluate (all circuits)" ~count:6
    QCheck.(int_range 0 10_000)
    (fun seed ->
      List.for_all (fun circuit -> agreement_run circuit ~seed ~steps:40) Benchmarks.all)

let suite =
  [
    ("initial totals match the evaluator", `Quick, test_initial_matches_evaluate);
    ("staged ops undo to the original state", `Quick, test_staged_then_undo_restores);
    ("commit keeps the staged state", `Quick, test_commit_keeps_staged_state);
    ("swap clamps into the die; self-swap no-op", `Quick, test_swap_is_clamped_and_self_noop);
    ("batch mode matches the evaluator", `Quick, test_batch_mode);
    ("argument errors", `Quick, test_argument_errors);
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_agrees_with_evaluator ]

(* Tests for the op-amp performance model and the layout-inclusive
   synthesis loop. *)

open Mps_netlist
open Mps_core
open Mps_synthesis

let check_bool = Alcotest.(check bool)

let process = Mps_modgen.Process.default
let circuit = lazy (Opamp.circuit process)

let test_circuit_shape () =
  let c = Lazy.force circuit in
  Alcotest.(check int) "five blocks" 5 (Circuit.n_blocks c);
  Alcotest.(check int) "nine nets" 9 (Circuit.n_nets c);
  Alcotest.(check int) "22 terminals" 22 (Circuit.n_terminals c)

let test_sizing_clamp () =
  let s = { Opamp.w1_um = 1000.0; w3_um = 0.1; w5_um = 10.0; w6_um = 20.0; cc_ff = 1e9 } in
  let c = Opamp.clamp_sizing s in
  check_bool "w1 clamped to hi" true (c.Opamp.w1_um = Opamp.sizing_hi.Opamp.w1_um);
  check_bool "w3 clamped to lo" true (c.Opamp.w3_um = Opamp.sizing_lo.Opamp.w3_um);
  check_bool "w5 untouched" true (c.Opamp.w5_um = 10.0);
  check_bool "cc clamped" true (c.Opamp.cc_ff = Opamp.sizing_hi.Opamp.cc_ff)

let test_nominal_inside_bounds () =
  let n = Opamp.nominal_sizing in
  check_bool "nominal is its own clamp" true (Opamp.clamp_sizing n = n)

let test_dims_within_circuit_bounds () =
  let c = Lazy.force circuit in
  let sizings =
    [
      Opamp.sizing_lo;
      Opamp.sizing_hi;
      Opamp.nominal_sizing;
      { Opamp.w1_um = 11.3; w3_um = 29.0; w5_um = 3.7; w6_um = 77.0; cc_ff = 345.0 };
    ]
  in
  List.iter
    (fun s -> check_bool "dims valid" true (Circuit.dims_valid c (Opamp.dims process c s)))
    sizings

let test_devices_order () =
  let devs = Opamp.devices Opamp.nominal_sizing in
  Alcotest.(check int) "five devices" 5 (Array.length devs);
  check_bool "cap last" true
    (match devs.(4) with Mps_modgen.Device.Capacitor _ -> true | _ -> false)

let perf_at sizing =
  let c = Lazy.force circuit in
  let die_w, die_h = Circuit.default_die c in
  let dims = Opamp.dims process c sizing in
  let rng = Mps_rng.Rng.create ~seed:3 in
  let p = Mps_placement.Placement.random rng c ~die_w ~die_h in
  (* shrink dims to legal if needed: use min dims for placement legality *)
  let rects =
    if Mps_placement.Placement.is_legal p dims then Mps_placement.Placement.rects p dims
    else Mps_placement.Repack.instantiate ~die:(die_w, die_h) ~coords:p.Mps_placement.Placement.coords dims
  in
  Opamp.performance process c ~die_w ~die_h sizing rects

let test_performance_monotonicity () =
  let base = Opamp.nominal_sizing in
  let p0 = perf_at base in
  (* more compensation cap -> lower GBW and slew *)
  let p_cap = perf_at { base with Opamp.cc_ff = base.Opamp.cc_ff *. 3.0 } in
  check_bool "cap reduces GBW" true (p_cap.Opamp.gbw_mhz < p0.Opamp.gbw_mhz);
  check_bool "cap reduces slew" true (p_cap.Opamp.slew_v_per_us < p0.Opamp.slew_v_per_us);
  (* more tail current -> more power *)
  let p_tail = perf_at { base with Opamp.w5_um = base.Opamp.w5_um *. 2.0 } in
  check_bool "tail increases power" true (p_tail.Opamp.power_mw > p0.Opamp.power_mw)

let test_wire_cap_feedback () =
  (* a floorplan with longer wires must report more parasitic cap and
     less bandwidth at the same sizing *)
  let c = Lazy.force circuit in
  let die_w, die_h = Circuit.default_die c in
  let sizing = Opamp.nominal_sizing in
  let dims = Opamp.dims process c sizing in
  let compact = Mps_placement.Repack.instantiate ~die:(die_w, die_h)
      ~coords:(Array.make (Circuit.n_blocks c) (0, 0)) dims
  in
  let corners =
    [| (0, 0); (die_w - 200, die_h - 200); (0, die_h - 200); (die_w - 200, 0); (die_w / 2, 0) |]
  in
  let spread = Mps_placement.Repack.instantiate ~die:(die_w, die_h) ~coords:corners dims in
  let p_compact = Opamp.performance process c ~die_w ~die_h sizing compact in
  let p_spread = Opamp.performance process c ~die_w ~die_h sizing spread in
  check_bool "spread has more wire cap" true
    (p_spread.Opamp.wire_cap_ff > p_compact.Opamp.wire_cap_ff);
  check_bool "spread has less GBW" true (p_spread.Opamp.gbw_mhz < p_compact.Opamp.gbw_mhz)

let test_spec_cost () =
  let good =
    { Opamp.gain_db = 80.0; gbw_mhz = 10.0; slew_v_per_us = 5.0; power_mw = 1.0;
      wire_cap_ff = 100.0; area = 10_000 }
  in
  let bad = { good with Opamp.gain_db = 30.0 } in
  check_bool "good meets spec" true (Opamp.meets_spec Opamp.default_spec good);
  check_bool "bad fails spec" false (Opamp.meets_spec Opamp.default_spec bad);
  check_bool "violation dominates" true
    (Opamp.spec_cost Opamp.default_spec bad
     > Opamp.spec_cost Opamp.default_spec good +. 10.0)

let quick_structure =
  lazy
    (let c = Lazy.force circuit in
     fst (Generator.generate ~config:Generator.fast_config c))

let run_loop placer =
  let c = Lazy.force circuit in
  let die_w, die_h = Circuit.default_die c in
  let config = { Synth_loop.default_config with iterations = 25 } in
  Synth_loop.run ~config process c ~die_w ~die_h placer

let test_loop_mps () =
  let r = run_loop (Synth_loop.mps_placer (Lazy.force quick_structure)) in
  check_bool "evaluations" true (r.Synth_loop.evaluations = 26);
  check_bool "history monotone" true
    (let ok = ref true in
     Array.iteri
       (fun i c -> if i > 0 && c > r.Synth_loop.history.(i - 1) +. 1e-9 then ok := false)
       r.Synth_loop.history;
     !ok);
  check_bool "best cost finite" true (Float.is_finite r.Synth_loop.best_cost);
  check_bool "placement time <= total" true
    (r.Synth_loop.placement_seconds <= r.Synth_loop.total_seconds)

let test_loop_template () =
  let c = Lazy.force circuit in
  let die_w, die_h = Circuit.default_die c in
  let rng = Mps_rng.Rng.create ~seed:2 in
  let template =
    Mps_baselines.Template_placer.build ~iterations:800 ~rng c ~die_w ~die_h
  in
  let r = run_loop (Synth_loop.template_placer template) in
  check_bool "finishes" true (Float.is_finite r.Synth_loop.best_cost)

let test_loop_deterministic () =
  let placer = Synth_loop.mps_placer (Lazy.force quick_structure) in
  let a = run_loop placer and b = run_loop placer in
  Alcotest.(check (float 1e-12)) "same best cost" a.Synth_loop.best_cost b.Synth_loop.best_cost;
  check_bool "same best sizing" true (a.Synth_loop.best_sizing = b.Synth_loop.best_sizing)

let test_loop_best_perf_matches_cost () =
  let r = run_loop (Synth_loop.mps_placer (Lazy.force quick_structure)) in
  let recomputed = Opamp.spec_cost Opamp.default_spec r.Synth_loop.best_perf in
  Alcotest.(check (float 1e-9)) "cost consistent" r.Synth_loop.best_cost recomputed

let test_loop_aspect_hints () =
  let c = Lazy.force circuit in
  let die_w, die_h = Circuit.default_die c in
  let config =
    { Synth_loop.default_config with iterations = 40; optimize_aspect = true }
  in
  let r =
    Synth_loop.run ~config process c ~die_w ~die_h
      (Synth_loop.mps_placer (Lazy.force quick_structure))
  in
  Alcotest.(check int) "one hint per block" (Circuit.n_blocks c)
    (Array.length r.Synth_loop.best_aspect_hints);
  Array.iter
    (fun h -> check_bool "hint within bounds" true (h >= 0.25 && h <= 4.0))
    r.Synth_loop.best_aspect_hints

let test_loop_aspect_off_keeps_unit_hints () =
  let c = Lazy.force circuit in
  let die_w, die_h = Circuit.default_die c in
  let config =
    { Synth_loop.default_config with iterations = 15; optimize_aspect = false }
  in
  let r =
    Synth_loop.run ~config process c ~die_w ~die_h
      (Synth_loop.mps_placer (Lazy.force quick_structure))
  in
  check_bool "hints stay at 1.0" true
    (Array.for_all (fun h -> h = 1.0) r.Synth_loop.best_aspect_hints)

let test_dims_aspect_hint_changes_shape () =
  let c = Lazy.force circuit in
  let wide = Opamp.dims ~aspect_hints:[| 4.0; 4.0; 4.0; 4.0; 4.0 |] process c Opamp.nominal_sizing in
  let tall = Opamp.dims ~aspect_hints:[| 0.25; 0.25; 0.25; 0.25; 0.25 |] process c Opamp.nominal_sizing in
  let ratio dims i =
    float_of_int (Mps_geometry.Dims.width dims i) /. float_of_int (Mps_geometry.Dims.height dims i)
  in
  (* at least the MOS blocks (0..3) follow the hint direction *)
  let follows = ref 0 in
  for i = 0 to 3 do
    if ratio wide i >= ratio tall i then incr follows
  done;
  check_bool "hints steer block shapes" true (!follows >= 3)

let test_loop_runs_on_salvaged_structure () =
  (* graceful degradation end to end: truncate a serialized structure,
     salvage what is left, and drive the full synthesis loop with the
     salvaged structure — it must still produce finite costs and
     overlap-free floorplans *)
  let c = Lazy.force circuit in
  let s = Lazy.force quick_structure in
  let doc = Codec.to_string s in
  let lines = String.split_on_char '\n' doc in
  let keep = List.length lines / 2 in
  let truncated = String.concat "\n" (List.filteri (fun i _ -> i < keep) lines) in
  match Codec.salvage_of_string ~circuit:c truncated with
  | Error e -> Alcotest.fail (Codec.error_to_string e)
  | Ok sv ->
    check_bool "salvage lost something" true
      (sv.Codec.recovered < Structure.n_placements s);
    let placer = Synth_loop.mps_placer sv.Codec.structure in
    let r = run_loop placer in
    check_bool "salvaged loop finishes" true (Float.is_finite r.Synth_loop.best_cost);
    (* the winning floorplan is still a legal placement *)
    let best_dims = Opamp.dims ~aspect_hints:r.Synth_loop.best_aspect_hints process c
        r.Synth_loop.best_sizing
    in
    check_bool "salvaged floorplan overlap-free" true
      (Mps_geometry.Rect.any_overlap (placer.Synth_loop.place best_dims) = None)

let test_dims_mismatched_circuit () =
  (* the synth circuit and the Table 1 benchmark circuit differ in
     designer bounds; dims clamp into whichever circuit is passed *)
  let c = Lazy.force circuit in
  let dims = Opamp.dims process c Opamp.sizing_hi in
  check_bool "valid for synth circuit" true (Circuit.dims_valid c dims)

let suite =
  [
    ("opamp circuit shape matches Table 1", `Quick, test_circuit_shape);
    ("sizing clamp", `Quick, test_sizing_clamp);
    ("nominal sizing inside bounds", `Quick, test_nominal_inside_bounds);
    ("module dims stay within designer bounds", `Quick, test_dims_within_circuit_bounds);
    ("device vector order", `Quick, test_devices_order);
    ("performance monotonic in cap and tail", `Quick, test_performance_monotonicity);
    ("layout wirelength feeds back into GBW", `Quick, test_wire_cap_feedback);
    ("spec cost penalizes violations", `Quick, test_spec_cost);
    ("loop: runs with the MPS placer", `Quick, test_loop_mps);
    ("loop: runs with the template placer", `Quick, test_loop_template);
    ("loop: deterministic per seed", `Quick, test_loop_deterministic);
    ("loop: best perf consistent with best cost", `Quick, test_loop_best_perf_matches_cost);
    ("loop: aspect hints optimized and bounded", `Quick, test_loop_aspect_hints);
    ("loop: aspect off keeps unit hints", `Quick, test_loop_aspect_off_keeps_unit_hints);
    ("dims: aspect hints steer block shapes", `Quick, test_dims_aspect_hint_changes_shape);
    ("loop: dims valid at extreme sizing", `Quick, test_dims_mismatched_circuit);
    ("loop: runs on a salvaged structure", `Quick, test_loop_runs_on_salvaged_structure);
  ]

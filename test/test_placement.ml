(* Tests for placements, expansion and perturbation. *)

open Mps_rng
open Mps_geometry
open Mps_netlist
open Mps_placement

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let circuit2 =
  Circuit.make ~name:"two"
    ~blocks:
      [|
        Block.make_wh ~id:0 ~name:"a" ~w:(4, 12) ~h:(4, 12);
        Block.make_wh ~id:1 ~name:"b" ~w:(4, 12) ~h:(4, 12);
      |]
    ~nets:[| Net.make ~id:0 ~name:"n" ~pins:[ Net.block_pin 0; Net.block_pin 1 ] |]

let test_rects () =
  let p = Placement.make ~coords:[| (0, 0); (10, 10) |] ~die_w:40 ~die_h:40 in
  let rects = Placement.rects p (Dims.of_pairs [| (4, 5); (6, 7) |]) in
  check_bool "r0" true (Rect.equal rects.(0) (Rect.make ~x:0 ~y:0 ~w:4 ~h:5));
  check_bool "r1" true (Rect.equal rects.(1) (Rect.make ~x:10 ~y:10 ~w:6 ~h:7))

let test_legal () =
  let p = Placement.make ~coords:[| (0, 0); (10, 10) |] ~die_w:40 ~die_h:40 in
  check_bool "legal" true (Placement.is_legal p (Dims.of_pairs [| (4, 4); (4, 4) |]));
  check_bool "overlap illegal" false
    (Placement.is_legal p (Dims.of_pairs [| (12, 12); (4, 4) |]));
  check_bool "oob illegal" false
    (Placement.is_legal p (Dims.of_pairs [| (4, 4); (12, 31) |]))

let test_random_legal () =
  let rng = Rng.create ~seed:5 in
  for _ = 1 to 30 do
    let p = Placement.random rng circuit2 ~die_w:40 ~die_h:40 in
    check_bool "legal at min" true (Placement.is_legal p (Circuit.min_dims circuit2))
  done

let test_random_impossible () =
  let rng = Rng.create ~seed:5 in
  let fat =
    Circuit.make ~name:"fat"
      ~blocks:
        [|
          Block.make_wh ~id:0 ~name:"a" ~w:(30, 30) ~h:(30, 30);
          Block.make_wh ~id:1 ~name:"b" ~w:(30, 30) ~h:(30, 30);
        |]
      ~nets:[||]
  in
  (* two 30x30 blocks cannot fit a 40x40 die without overlapping *)
  check_bool "raises" true
    (try
       ignore (Placement.random rng fat ~die_w:40 ~die_h:40);
       false
     with Failure _ -> true)

let test_move_block () =
  let p = Placement.make ~coords:[| (0, 0); (10, 10) |] ~die_w:40 ~die_h:40 in
  let p' = Placement.move_block p 1 ~x:20 ~y:5 in
  check_bool "moved" true (p'.Placement.coords.(1) = (20, 5));
  check_bool "original intact" true (p.Placement.coords.(1) = (10, 10))

(* Expansion *)

let test_expand_lone_block () =
  let c =
    Circuit.make ~name:"one"
      ~blocks:[| Block.make_wh ~id:0 ~name:"a" ~w:(2, 100) ~h:(2, 100) |]
      ~nets:[||]
  in
  let p = Placement.make ~coords:[| (3, 4) |] ~die_w:20 ~die_h:20 in
  let box = Expand.expand c p in
  (* grows to the die edge: width 20-3=17, height 20-4=16 *)
  check_bool "w grows to die" true (Interval.equal (Dimbox.w_interval box 0) (Interval.make 2 17));
  check_bool "h grows to die" true (Interval.equal (Dimbox.h_interval box 0) (Interval.make 2 16))

let test_expand_respects_designer_max () =
  let c =
    Circuit.make ~name:"one"
      ~blocks:[| Block.make_wh ~id:0 ~name:"a" ~w:(2, 5) ~h:(2, 6) |]
      ~nets:[||]
  in
  let p = Placement.make ~coords:[| (0, 0) |] ~die_w:100 ~die_h:100 in
  let box = Expand.expand c p in
  check_int "w capped" 5 (Interval.hi (Dimbox.w_interval box 0));
  check_int "h capped" 6 (Interval.hi (Dimbox.h_interval box 0))

let test_expand_blocked_by_neighbor () =
  let c =
    Circuit.make ~name:"pair"
      ~blocks:
        [|
          Block.make_wh ~id:0 ~name:"a" ~w:(2, 50) ~h:(2, 50);
          Block.make_wh ~id:1 ~name:"b" ~w:(2, 50) ~h:(2, 50);
        |]
      ~nets:[||]
  in
  (* b sits directly right of a at x=10; a's width growth stops there
     once b is at its own expanded size. *)
  let p = Placement.make ~coords:[| (0, 0); (10, 0) |] ~die_w:30 ~die_h:8 in
  let box = Expand.expand c p in
  let w0 = Interval.hi (Dimbox.w_interval box 0) in
  let w1 = Interval.hi (Dimbox.w_interval box 1) in
  (* the two widths share the 30 columns: a gets [0,x), b the rest *)
  check_bool "partition of the row" true (w0 <= 10 && 10 + w1 <= 30);
  check_bool "heights grow to die" true
    (Interval.hi (Dimbox.h_interval box 0) = 8 && Interval.hi (Dimbox.h_interval box 1) = 8)

let test_expand_requires_legal_min () =
  let c =
    Circuit.make ~name:"pair"
      ~blocks:
        [|
          Block.make_wh ~id:0 ~name:"a" ~w:(5, 10) ~h:(5, 10);
          Block.make_wh ~id:1 ~name:"b" ~w:(5, 10) ~h:(5, 10);
        |]
      ~nets:[||]
  in
  let p = Placement.make ~coords:[| (0, 0); (2, 2) |] ~die_w:30 ~die_h:30 in
  Alcotest.check_raises "illegal at min"
    (Invalid_argument "Expand.expand: placement illegal at minimum dimensions") (fun () ->
      ignore (Expand.expand c p))

let test_expand_monotone_legality () =
  (* Every dimension vector inside the expanded box instantiates a legal
     floorplan (the anchoring monotonicity the MPS relies on). *)
  let rng = Rng.create ~seed:11 in
  let c = Mps_netlist.Benchmarks.circ01 in
  let die_w, die_h = Circuit.default_die c in
  for _ = 1 to 10 do
    let p = Placement.random rng c ~die_w ~die_h in
    let box = Expand.expand c p in
    for _ = 1 to 30 do
      let dims = Dimbox.random_dims rng box in
      check_bool "legal inside box" true (Placement.is_legal p dims)
    done;
    check_bool "legal at upper corner" true (Placement.is_legal p (Dimbox.upper_corner box))
  done

let test_expand_box_within_designer_bounds () =
  let rng = Rng.create ~seed:13 in
  let c = Mps_netlist.Benchmarks.circ02 in
  let die_w, die_h = Circuit.default_die c in
  let bounds = Circuit.dim_bounds c in
  for _ = 1 to 10 do
    let p = Placement.random rng c ~die_w ~die_h in
    let box = Expand.expand c p in
    check_bool "inside designer space" true (Dimbox.contains_box ~outer:bounds ~inner:box)
  done

(* Perturb *)

let test_wrap () =
  check_int "inside" 5 (Perturb.wrap 5 ~range:10);
  check_int "zero range" 0 (Perturb.wrap 7 ~range:0);
  check_int "wrap over" 1 (Perturb.wrap 12 ~range:10);
  check_int "wrap exact" 0 (Perturb.wrap 11 ~range:10);
  check_int "wrap under" 10 (Perturb.wrap (-1) ~range:10);
  check_int "at range" 10 (Perturb.wrap 10 ~range:10)

let test_perturb_legal_and_different () =
  let rng = Rng.create ~seed:21 in
  let c = Mps_netlist.Benchmarks.circ01 in
  let die_w, die_h = Circuit.default_die c in
  let p = Placement.random rng c ~die_w ~die_h in
  let min_dims = Circuit.min_dims c in
  let changed = ref 0 in
  for _ = 1 to 50 do
    let q = Perturb.perturb rng c ~fraction:0.5 ~max_shift:20 p in
    check_bool "legal after perturb" true (Placement.is_legal q min_dims);
    if not (Placement.equal p q) then incr changed
  done;
  check_bool "usually moves something" true (!changed > 40)

let test_perturb_invalid_args () =
  let rng = Rng.create ~seed:21 in
  let c = Mps_netlist.Benchmarks.circ01 in
  let die_w, die_h = Circuit.default_die c in
  let p = Placement.random rng c ~die_w ~die_h in
  Alcotest.check_raises "fraction 0" (Invalid_argument "Perturb.perturb: fraction must be in (0, 1]")
    (fun () -> ignore (Perturb.perturb rng c ~fraction:0.0 ~max_shift:5 p));
  Alcotest.check_raises "shift 0" (Invalid_argument "Perturb.perturb: non-positive max_shift")
    (fun () -> ignore (Perturb.perturb rng c ~fraction:0.5 ~max_shift:0 p))

let test_perturb_impossible_block_fails_fast () =
  (* A block whose minimum size exceeds the die must be reported by
     name up front, not as an opaque range error mid-walk. *)
  let rng = Rng.create ~seed:21 in
  let c =
    Circuit.make ~name:"impossible"
      ~blocks:[| Block.make_wh ~id:0 ~name:"big" ~w:(50, 60) ~h:(50, 60) |]
      ~nets:[||]
  in
  let p = Placement.make ~coords:[| (0, 0) |] ~die_w:20 ~die_h:20 in
  Alcotest.check_raises "named in the error"
    (Invalid_argument
       "Perturb.perturb: block 0 (big) minimum size 50x50 exceeds the 20x20 die")
    (fun () -> ignore (Perturb.perturb rng c ~fraction:1.0 ~max_shift:5 p))

let suite =
  [
    ("rects instantiation", `Quick, test_rects);
    ("legality", `Quick, test_legal);
    ("random placement is legal at min dims", `Quick, test_random_legal);
    ("random placement fails on impossible die", `Quick, test_random_impossible);
    ("move_block", `Quick, test_move_block);
    ("expand: lone block fills die", `Quick, test_expand_lone_block);
    ("expand: designer max respected", `Quick, test_expand_respects_designer_max);
    ("expand: blocked by neighbour", `Quick, test_expand_blocked_by_neighbor);
    ("expand: rejects illegal min placement", `Quick, test_expand_requires_legal_min);
    ("expand: whole box instantiates legally", `Quick, test_expand_monotone_legality);
    ("expand: box within designer bounds", `Quick, test_expand_box_within_designer_bounds);
    ("perturb: toroidal wrap", `Quick, test_wrap);
    ("perturb: stays legal, usually moves", `Quick, test_perturb_legal_and_different);
    ("perturb: invalid arguments", `Quick, test_perturb_invalid_args);
    ("perturb: impossible block fails fast", `Quick, test_perturb_impossible_block_fails_fast);
  ]

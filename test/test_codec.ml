(* Tests for multi-placement structure persistence: round-trips,
   integrity checking (version + CRC-32), atomic save, legacy formats,
   and graceful degradation on corrupt or truncated documents. *)

open Mps_geometry
open Mps_netlist
open Mps_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let circuit = Benchmarks.circ01

let structure =
  lazy (fst (Generator.generate ~config:Generator.fast_config circuit))

(* Tiny generation budget for the all-benchmarks fixpoint sweep. *)
let tiny_config =
  {
    Generator.fast_config with
    Generator.explorer_iterations = 4;
    bdio = { Bdio.default_config with Bdio.iterations = 40 };
    max_placements = 12;
    backup_iterations = 150;
    refine_iterations = 0;
  }

let is_corrupt = function Codec.Error (Codec.Corrupt _) -> true | _ -> false

let rejects_with pred doc =
  try
    ignore (Codec.of_string ~circuit doc);
    false
  with e -> pred e

let test_roundtrip_string () =
  let s = Lazy.force structure in
  let doc = Codec.to_string s in
  let s' = Codec.of_string ~circuit doc in
  check_int "placement count survives" (Structure.n_placements s) (Structure.n_placements s');
  Alcotest.(check (float 1e-12)) "coverage survives" (Structure.coverage s) (Structure.coverage s');
  check_bool "die survives" true (Structure.die s = Structure.die s');
  (* stored placements identical field by field *)
  Array.iter2
    (fun a b ->
      check_bool "boxes equal" true (Dimbox.equal a.Stored.box b.Stored.box);
      check_bool "expansions equal" true (Dimbox.equal a.Stored.expansion b.Stored.expansion);
      check_bool "coords equal" true
        (Mps_placement.Placement.equal a.Stored.placement b.Stored.placement);
      check_bool "best dims equal" true (Dims.equal a.Stored.best_dims b.Stored.best_dims);
      Alcotest.(check (float 0.0)) "avg cost exact" a.Stored.avg_cost b.Stored.avg_cost;
      Alcotest.(check (float 0.0)) "best cost exact" a.Stored.best_cost b.Stored.best_cost)
    (Structure.placements s) (Structure.placements s');
  let ba = Structure.backup s and bb = Structure.backup s' in
  check_bool "backup survives" true
    (Mps_placement.Placement.equal ba.Stored.placement bb.Stored.placement)

let test_roundtrip_queries_agree () =
  let s = Lazy.force structure in
  let s' = Codec.of_string ~circuit (Codec.to_string s) in
  let probes = Mps_experiments.Experiments.probe_dims ~seed:5 ~n:300 s in
  Array.iter
    (fun dims ->
      let a1, _ = Structure.query s dims and a2, _ = Structure.query s' dims in
      check_bool "same answer" true (a1 = a2);
      let r1 = Structure.instantiate s dims and r2 = Structure.instantiate s' dims in
      check_bool "same floorplan" true (Array.for_all2 Rect.equal r1 r2))
    probes

let test_roundtrip_file () =
  let s = Lazy.force structure in
  let path = Filename.temp_file "mps_codec" ".mps" in
  Codec.save s ~path;
  let s' = Codec.load ~circuit ~path in
  Sys.remove path;
  check_int "count" (Structure.n_placements s) (Structure.n_placements s')

(* to_string → of_string → to_string is a fixpoint, across all nine
   Table 1 benchmark circuits. *)
let test_fixpoint_all_benchmarks () =
  check_int "Table 1 has nine circuits" 9 (List.length Benchmarks.all);
  List.iter
    (fun c ->
      let s, _ = Generator.generate ~config:tiny_config c in
      let doc = Codec.to_string s in
      let doc' = Codec.to_string (Codec.of_string ~circuit:c doc) in
      check_bool (c.Circuit.name ^ ": serialization fixpoint") true (doc = doc'))
    Benchmarks.all

let test_save_is_atomic_replace () =
  let s = Lazy.force structure in
  let dir = Filename.temp_file "mps_codec_dir" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let path = Filename.concat dir "structure.mps" in
  Codec.save s ~path;
  (* overwrite in place: the reload stays valid and no temp litter
     survives a successful save *)
  Codec.save s ~path;
  check_int "reload ok" (Structure.n_placements s)
    (Structure.n_placements (Codec.load ~circuit ~path));
  check_bool "no stray temp files" true (Sys.readdir dir = [| "structure.mps" |]);
  Sys.remove path;
  Sys.rmdir dir

let test_save_unwritable_is_io_error () =
  let s = Lazy.force structure in
  check_bool "Io_error on unwritable dir" true
    (try
       Codec.save s ~path:"/nonexistent-dir-mps/structure.mps";
       false
     with Codec.Error (Codec.Io_error _) -> true)

let test_load_missing_is_io_error () =
  check_bool "Io_error on missing file" true
    (try
       ignore (Codec.load ~circuit ~path:"/tmp/no-such-mps-file.mps");
       false
     with Codec.Error (Codec.Io_error _) -> true)

let test_wrong_circuit_rejected () =
  let s = Lazy.force structure in
  let doc = Codec.to_string s in
  check_bool "rejects another circuit" true
    (try
       ignore (Codec.of_string ~circuit:Benchmarks.circ02 doc);
       false
     with Codec.Error (Codec.Circuit_mismatch _) -> true)

let test_bad_header () =
  check_bool "rejects garbage" true (rejects_with is_corrupt "not a structure\n")

let test_checksum_detects_any_flip () =
  let s = Lazy.force structure in
  let doc = Codec.to_string s in
  (* flip one payload character in several places; every flip must be
     caught by the checksum (as Corrupt at line 2) before parsing *)
  let header_len =
    (* start of payload: after the two header lines *)
    String.index_from doc (String.index doc '\n' + 1) '\n' + 1
  in
  List.iter
    (fun pos ->
      let i = header_len + (pos mod (String.length doc - header_len)) in
      let b = Bytes.of_string doc in
      Bytes.set b i (if Bytes.get b i = '0' then '1' else '0');
      let flipped = Bytes.to_string b in
      if flipped <> doc then
        check_bool
          (Printf.sprintf "flip at %d rejected" i)
          true
          (rejects_with
             (function
               | Codec.Error (Codec.Corrupt { lineno; _ }) -> lineno = 2
               | _ -> false)
             flipped))
    [ 0; 17; 101; 999; 4242; 100_003 ]

let test_corrupted_interval () =
  let s = Lazy.force structure in
  let doc = Codec.to_string s in
  (* flip a box line into an inverted interval — and refresh the
     checksum so the structural validation (not the checksum) trips *)
  let lines = String.split_on_char '\n' (Codec.to_string s) in
  let payload_lines =
    List.filteri (fun i _ -> i >= 2) lines
    |> List.map (fun l ->
           if String.length l > 6 && String.sub l 0 6 = "box.w " then "box.w 9 1" else l)
  in
  let payload = String.concat "\n" payload_lines in
  let forged =
    Printf.sprintf "mps-structure v2\nchecksum %s\n%s"
      (Mps_core.Persist.crc32_hex payload)
      payload
  in
  ignore doc;
  check_bool "rejects inverted interval" true (rejects_with is_corrupt forged)

(* Integrity: Codec.load must reject EVERY single-line truncation of a
   saved file, while load_salvage recovers a queryable structure (or
   fails with a typed error when nothing is left) and never returns
   overlapping validity boxes. *)
let test_truncation_at_every_line () =
  let s, _ = Generator.generate ~config:tiny_config circuit in
  let doc = Codec.to_string s in
  let lines = String.split_on_char '\n' doc in
  let n_lines = List.length lines in
  let path = Filename.temp_file "mps_trunc" ".mps" in
  for keep = 0 to n_lines - 2 do
    let truncated =
      String.concat "\n" (List.filteri (fun i _ -> i < keep) lines)
    in
    let oc = open_out path in
    output_string oc truncated;
    close_out oc;
    (* strict load always refuses *)
    check_bool
      (Printf.sprintf "load rejects truncation to %d lines" keep)
      true
      (try
         ignore (Codec.load ~circuit ~path);
         false
       with Codec.Error _ -> true);
    (* salvage never crashes: either a typed error or a queryable
       structure with pairwise-disjoint boxes *)
    match Codec.load_salvage ~circuit ~path with
    | Error (Codec.Corrupt _) | Error (Codec.Io_error _) -> ()
    | Error (Codec.Circuit_mismatch _) ->
      Alcotest.fail "salvage must not misreport the circuit"
    | Ok sv ->
      let stored = Structure.placements sv.Codec.structure in
      Array.iteri
        (fun i a ->
          Array.iteri
            (fun j b ->
              if i < j then
                check_bool "salvaged boxes disjoint" false
                  (Dimbox.overlaps a.Stored.box b.Stored.box))
            stored)
        stored;
      (* the salvaged structure answers queries *)
      let dims = Dimbox.center (Circuit.dim_bounds circuit) in
      let rects = Structure.instantiate sv.Codec.structure dims in
      check_bool "salvaged structure instantiates overlap-free" true
        (Rect.any_overlap rects = None)
  done;
  Sys.remove path

let test_salvage_reports_drops () =
  let s, _ = Generator.generate ~config:tiny_config circuit in
  let doc = Codec.to_string s in
  let lines = String.split_on_char '\n' doc in
  (* cut the document at 60%: a truncated tail *)
  let keep = List.length lines * 6 / 10 in
  let truncated = String.concat "\n" (List.filteri (fun i _ -> i < keep) lines) in
  match Codec.salvage_of_string ~circuit truncated with
  | Error e -> Alcotest.fail (Codec.error_to_string e)
  | Ok sv ->
    check_bool "something recovered" true (sv.Codec.recovered > 0);
    check_bool "something dropped" true (sv.Codec.dropped > 0);
    check_int "recovered + dropped = claimed" (Structure.n_placements s)
      (sv.Codec.recovered + sv.Codec.dropped);
    check_bool "checksum reported bad" false sv.Codec.checksum_ok

let test_salvage_intact_file_recovers_everything () =
  let s = Lazy.force structure in
  match Codec.salvage_of_string ~circuit (Codec.to_string s) with
  | Error e -> Alcotest.fail (Codec.error_to_string e)
  | Ok sv ->
    check_int "all placements recovered" (Structure.n_placements s) sv.Codec.recovered;
    check_int "nothing dropped" 0 sv.Codec.dropped;
    check_bool "backup recovered" true sv.Codec.backup_recovered;
    check_bool "checksum ok" true sv.Codec.checksum_ok

(* Format freeze: a hand-written legacy v1 document (the seed format:
   magic line, no checksum) must keep loading in future versions. *)
let golden_v1 =
  String.concat "\n"
    [
      "mps-structure v1";
      "circuit 1 1 golden";
      "die 100 100";
      "placements 1";
      "placement 10 5 0";
      "coords 3 4";
      "box.w 2 8";
      "box.h 2 8";
      "expansion.w 1 20";
      "expansion.h 1 20";
      "best_dims 5 5";
      "backup";
      "placement 12 6 1";
      "coords 0 0";
      "box.w 1 50";
      "box.h 1 50";
      "expansion.w 1 30";
      "expansion.h 1 30";
      "best_dims 10 10";
      "";
    ]

let golden_circuit =
  Circuit.make ~name:"golden"
    ~blocks:[| Mps_netlist.Block.make_wh ~id:0 ~name:"a" ~w:(1, 50) ~h:(1, 50) |]
    ~nets:
      [| Mps_netlist.Net.make ~id:0 ~name:"n"
           ~pins:[ Mps_netlist.Net.block_pin 0; Mps_netlist.Net.pad ~px:0.0 ~py:0.0 ] |]

let test_golden_v1_parses () =
  let s = Codec.of_string ~circuit:golden_circuit golden_v1 in
  check_int "one placement" 1 (Structure.n_placements s);
  check_bool "backup is template-like" true (Structure.backup s).Stored.template_like;
  match Structure.query s (Mps_geometry.Dims.of_pairs [| (5, 5) |]) with
  | Structure.Stored_placement 0, _ -> ()
  | _ -> Alcotest.fail "golden query must hit placement 0"

let test_golden_v1_loads_from_file () =
  (* the seed wrote v1 files with Codec.save; they must load through
     the file path too, checksum-free *)
  let path = Filename.temp_file "mps_legacy" ".mps" in
  let oc = open_out path in
  output_string oc golden_v1;
  close_out oc;
  let s = Codec.load ~circuit:golden_circuit ~path in
  Sys.remove path;
  check_int "legacy file loads" 1 (Structure.n_placements s)

let test_headerless_v0_parses () =
  (* absent version line: treated as v0, parsed from the circuit line *)
  let v0 =
    String.concat "\n"
      (List.filteri (fun i _ -> i > 0) (String.split_on_char '\n' golden_v1))
  in
  let s = Codec.of_string ~circuit:golden_circuit v0 in
  check_int "v0 document parses" 1 (Structure.n_placements s)

let test_current_format_is_versioned_and_checksummed () =
  let s = Lazy.force structure in
  let doc = Codec.to_string s in
  let lines = String.split_on_char '\n' doc in
  check_int "format version" 2 Codec.format_version;
  check_bool "first line carries the version" true
    (List.nth lines 0 = "mps-structure v2");
  check_bool "second line carries the checksum" true
    (String.length (List.nth lines 1) = String.length "checksum " + 8
    && String.sub (List.nth lines 1) 0 9 = "checksum ")

let suite =
  [
    ("golden v1 document parses", `Quick, test_golden_v1_parses);
    ("golden v1 file loads (seed compatibility)", `Quick, test_golden_v1_loads_from_file);
    ("headerless v0 document parses", `Quick, test_headerless_v0_parses);
    ("current format is versioned and checksummed", `Quick,
     test_current_format_is_versioned_and_checksummed);
    ("round-trip via string", `Quick, test_roundtrip_string);
    ("round-trip answers identical queries", `Quick, test_roundtrip_queries_agree);
    ("round-trip via file", `Quick, test_roundtrip_file);
    ("serialization fixpoint on all nine benchmarks", `Slow, test_fixpoint_all_benchmarks);
    ("save atomically replaces", `Quick, test_save_is_atomic_replace);
    ("save into unwritable dir is Io_error", `Quick, test_save_unwritable_is_io_error);
    ("load of missing file is Io_error", `Quick, test_load_missing_is_io_error);
    ("wrong circuit rejected", `Quick, test_wrong_circuit_rejected);
    ("garbage header rejected", `Quick, test_bad_header);
    ("checksum catches single-character flips", `Quick, test_checksum_detects_any_flip);
    ("corrupted interval rejected", `Quick, test_corrupted_interval);
    ("every single-line truncation: load rejects, salvage degrades", `Quick,
     test_truncation_at_every_line);
    ("salvage reports recovered and dropped counts", `Quick, test_salvage_reports_drops);
    ("salvage of an intact file recovers everything", `Quick,
     test_salvage_intact_file_recovers_everything);
  ]

(* Tests for the invariant auditor and the quarantine/repair pass:
   freshly generated structures across all nine Table 1 benchmarks must
   come out audit-clean, seeded corruption must be detected with the
   right severity, and repair must drive a flawed structure back to a
   clean report. *)

open Mps_geometry
open Mps_netlist
open Mps_core

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tiny_config =
  {
    Generator.fast_config with
    Generator.explorer_iterations = 8;
    bdio = { Generator.fast_config.Generator.bdio with Bdio.iterations = 60 };
    max_placements = 25;
    backup_iterations = 300;
  }

let structures =
  lazy
    (List.map
       (fun c -> (c, fst (Generator.generate ~config:tiny_config c)))
       Benchmarks.all)

let for_all f () = List.iter (fun (c, s) -> f c s) (Lazy.force structures)

(* Satellite: the generator's output re-proves every invariant. *)
let test_fresh_structures_audit_clean c structure =
  let report = Audit.run structure in
  check_bool
    (Printf.sprintf "%s: fresh structure audit-clean\n%s" c.Circuit.name
       (Audit.to_string report))
    true (Audit.clean report)

let test_boxes_pairwise_disjoint c structure =
  let ps = Structure.placements structure in
  Array.iteri
    (fun i a ->
      Array.iteri
        (fun j b ->
          if i < j then
            check_bool
              (Printf.sprintf "%s: boxes %d/%d disjoint" c.Circuit.name i j)
              true
              (not (Dimbox.overlaps a.Stored.box b.Stored.box)))
        ps)
    ps

let test_coverage_agreement c structure =
  let exact = Structure.coverage structure in
  let sampled = Structure.coverage_sampled ~seed:5 ~samples:4000 structure in
  check_bool
    (Printf.sprintf "%s: sampled coverage %.3f agrees with exact %.3f" c.Circuit.name
       sampled exact)
    true
    (Float.abs (sampled -. exact) < 0.05)

(* Build a structure with one deliberately poisoned stored placement:
   [Structure.of_placements] validates box disjointness but trusts
   coordinates and costs, exactly the trust the auditor exists to
   re-check. *)
let poisoned_structure poison =
  let s = snd (List.hd (Lazy.force structures)) in
  let circuit = Structure.circuit s in
  let stored = Structure.placements s in
  stored.(0) <- poison stored.(0);
  Structure.of_placements ~backup:(Structure.backup s) circuit stored

let find_code code report =
  List.exists (fun f -> f.Audit.code = code) report.Audit.findings

let test_detects_cost_drift () =
  let s =
    poisoned_structure (fun p -> { p with Stored.best_cost = p.Stored.best_cost +. 500.0 })
  in
  let report = Audit.run s in
  check_bool "flags best-cost-drift" true (find_code "best-cost-drift" report);
  check_bool "not clean" false (Audit.clean report);
  check_bool "worst is Degraded" true (Audit.worst report = Some Audit.Degraded)

let test_detects_illegal_coords () =
  let s =
    poisoned_structure (fun p ->
        (* pile every block onto the same corner: overlapping floorplan *)
        let placement =
          {
            p.Stored.placement with
            Mps_placement.Placement.coords =
              Array.map (fun _ -> (0, 0)) p.Stored.placement.Mps_placement.Placement.coords;
          }
        in
        { p with Stored.placement })
  in
  let report = Audit.run s in
  if Stored.n_blocks (Structure.backup s) > 1 then begin
    check_bool "flags illegal-floorplan" true (find_code "illegal-floorplan" report);
    check_bool "worst is Fatal" true (Audit.worst report = Some Audit.Fatal)
  end

let test_detects_nonfinite_cost () =
  let s = poisoned_structure (fun p -> { p with Stored.avg_cost = Float.nan }) in
  let report = Audit.run s in
  check_bool "flags non-finite-cost" true (find_code "non-finite-cost" report)

let test_repair_restores_clean () =
  let s =
    poisoned_structure (fun p -> { p with Stored.best_cost = p.Stored.best_cost +. 500.0 })
  in
  let outcome = Repair.run s in
  check_bool "before is flawed" false (Audit.clean outcome.Repair.before);
  check_bool
    (Printf.sprintf "after is clean\n%s" (Audit.to_string outcome.Repair.after))
    true
    (Repair.clean outcome);
  check_bool "repaired in place, not quarantined" true
    (outcome.Repair.repaired_in_place >= 1 && outcome.Repair.quarantined = [])

let test_repair_quarantines_illegal () =
  let s0 = snd (List.hd (Lazy.force structures)) in
  if Stored.n_blocks (Structure.backup s0) > 1 then begin
    let s =
      poisoned_structure (fun p ->
          let placement =
            {
              p.Stored.placement with
              Mps_placement.Placement.coords =
                Array.map
                  (fun _ -> (0, 0))
                  p.Stored.placement.Mps_placement.Placement.coords;
            }
          in
          { p with Stored.placement })
    in
    let outcome = Repair.run s in
    check_bool "poisoned placement quarantined" true
      (List.mem 0 outcome.Repair.quarantined);
    check_bool
      (Printf.sprintf "after repair no fatal finding\n%s"
         (Audit.to_string outcome.Repair.after))
      true
      (Audit.count Audit.Fatal outcome.Repair.after = 0);
    check_int "one fewer placement served" (Structure.n_placements s - 1)
      (Structure.n_placements outcome.Repair.structure)
  end

let test_repair_noop_on_clean () =
  let s = snd (List.hd (Lazy.force structures)) in
  let outcome = Repair.run s in
  check_bool "clean input returned unchanged" true (outcome.Repair.structure == s);
  check_bool "no quarantine" true (outcome.Repair.quarantined = [])

let test_lenient_drops_overlapping () =
  let s = snd (List.hd (Lazy.force structures)) in
  let circuit = Structure.circuit s in
  let stored = Structure.placements s in
  if Array.length stored >= 2 then begin
    (* duplicate a box so eq. 5 would break; strict compile refuses *)
    let clash = { stored.(1) with Stored.box = stored.(0).Stored.box } in
    let tampered = Array.copy stored in
    tampered.(1) <- clash;
    (match Structure.of_placements ~backup:(Structure.backup s) circuit tampered with
    | _ -> Alcotest.fail "strict of_placements accepted overlapping boxes"
    | exception Invalid_argument _ -> ());
    let lenient, dropped =
      Structure.of_placements_lenient ~backup:(Structure.backup s) circuit tampered
    in
    check_int "exactly one quarantined" 1 (List.length dropped);
    check_bool "survivor set is one smaller" true
      (Structure.n_placements lenient = Array.length stored - 1)
  end

let test_report_json_shape () =
  let s = snd (List.hd (Lazy.force structures)) in
  let json = Audit.to_json (Audit.run s) in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "json mentions %s" needle) true
        (let n = String.length needle and len = String.length json in
         let rec find i =
           i + n <= len && (String.sub json i n = needle || find (i + 1))
         in
         find 0))
    [ "\"clean\": true"; "\"findings\""; "\"fatal\": 0" ]

let suite =
  [
    Alcotest.test_case "all benchmarks: fresh structures audit-clean" `Quick
      (for_all test_fresh_structures_audit_clean);
    Alcotest.test_case "all benchmarks: boxes pairwise disjoint" `Quick
      (for_all test_boxes_pairwise_disjoint);
    Alcotest.test_case "all benchmarks: coverage agrees with sampled" `Quick
      (for_all test_coverage_agreement);
    Alcotest.test_case "audit detects cost drift" `Quick test_detects_cost_drift;
    Alcotest.test_case "audit detects illegal coordinates" `Quick
      test_detects_illegal_coords;
    Alcotest.test_case "audit detects non-finite costs" `Quick test_detects_nonfinite_cost;
    Alcotest.test_case "repair restores a clean report" `Quick test_repair_restores_clean;
    Alcotest.test_case "repair quarantines illegal placements" `Quick
      test_repair_quarantines_illegal;
    Alcotest.test_case "repair is a no-op on clean input" `Quick test_repair_noop_on_clean;
    Alcotest.test_case "lenient compile quarantines overlapping boxes" `Quick
      test_lenient_drops_overlapping;
    Alcotest.test_case "audit report serializes to json" `Quick test_report_json_shape;
  ]

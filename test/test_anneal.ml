(* Tests for cooling schedules and the generic annealer. *)

open Mps_rng
open Mps_anneal

let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let test_geometric () =
  let s = Schedule.geometric ~t0:100.0 ~alpha:0.5 ~t_min:1.0 () in
  check_float "step 0" 100.0 (Schedule.temperature s ~step:0);
  check_float "step 1" 50.0 (Schedule.temperature s ~step:1);
  check_float "step 2" 25.0 (Schedule.temperature s ~step:2);
  check_float "floor" 1.0 (Schedule.temperature s ~step:100)

let test_geometric_invalid () =
  Alcotest.check_raises "bad alpha"
    (Invalid_argument "Schedule.geometric: need t0 > 0, 0 < alpha < 1, t_min > 0")
    (fun () -> ignore (Schedule.geometric ~alpha:1.5 ()))

let test_linear () =
  let s = Schedule.Linear { t0 = 100.0; steps = 10; t_min = 0.1 } in
  check_float "start" 100.0 (Schedule.temperature s ~step:0);
  check_bool "halfway lower" true (Schedule.temperature s ~step:5 < 60.0);
  check_float "past end" 0.1 (Schedule.temperature s ~step:10);
  check_float "far past end" 0.1 (Schedule.temperature s ~step:1000)

let test_constant () =
  let s = Schedule.Constant 3.0 in
  check_float "always" 3.0 (Schedule.temperature s ~step:77)

let test_negative_step () =
  Alcotest.check_raises "negative" (Invalid_argument "Schedule.temperature: negative step")
    (fun () -> ignore (Schedule.temperature (Schedule.Constant 1.0) ~step:(-1)))

(* Annealer on a 1-D quadratic: must find the minimum region. *)
let quadratic_problem =
  {
    Annealer.initial = 50.0;
    cost = (fun x -> (x -. 7.0) *. (x -. 7.0));
    neighbor = (fun rng x -> x +. Rng.float_in rng (-3.0) 3.0);
  }

let run_quadratic seed =
  Annealer.run ~rng:(Rng.create ~seed)
    ~schedule:(Schedule.geometric ~t0:100.0 ~alpha:0.97 ~t_min:1e-4 ())
    ~iterations:2000 quadratic_problem

let test_annealer_finds_minimum () =
  let r = run_quadratic 3 in
  check_bool "near 7" true (abs_float (r.Annealer.best -. 7.0) < 0.5);
  check_bool "best cost small" true (r.Annealer.best_cost < 0.5)

let test_annealer_statistics () =
  let r = run_quadratic 3 in
  check_bool "best <= final" true (r.Annealer.best_cost <= r.Annealer.final_cost);
  check_bool "avg >= best" true (r.Annealer.average_cost >= r.Annealer.best_cost);
  check_bool "evaluations = iterations + initial" true (r.Annealer.evaluations = 2001);
  check_bool "some acceptances" true (r.Annealer.acceptances > 0)

let test_annealer_deterministic () =
  let a = run_quadratic 9 and b = run_quadratic 9 in
  check_float "same best" a.Annealer.best b.Annealer.best;
  check_float "same avg" a.Annealer.average_cost b.Annealer.average_cost

let test_annealer_zero_iterations () =
  let r =
    Annealer.run ~rng:(Rng.create ~seed:1) ~schedule:(Schedule.Constant 1.0) ~iterations:0
      quadratic_problem
  in
  check_float "best is initial" 50.0 r.Annealer.best;
  check_bool "one evaluation" true (r.Annealer.evaluations = 1)

let test_annealer_on_accept_hook () =
  let count = ref 0 in
  let r =
    Annealer.run
      ~on_accept:(fun _ ~cost:_ ~step:_ -> incr count)
      ~rng:(Rng.create ~seed:2)
      ~schedule:(Schedule.Constant 10.0) ~iterations:100 quadratic_problem
  in
  Alcotest.(check int) "hook fired per acceptance" r.Annealer.acceptances !count

let test_annealer_should_stop () =
  let r =
    Annealer.run
      ~should_stop:(fun ~best_cost:_ ~step -> step >= 10)
      ~rng:(Rng.create ~seed:2)
      ~schedule:(Schedule.Constant 10.0) ~iterations:1000 quadratic_problem
  in
  check_bool "stopped early" true (r.Annealer.evaluations <= 11)

let test_annealer_greedy_at_low_temp () =
  (* At a near-zero temperature only improving moves are accepted, so
     the final cost never exceeds the initial cost. *)
  let r =
    Annealer.run ~rng:(Rng.create ~seed:4) ~schedule:(Schedule.Constant 1e-12)
      ~iterations:500 quadratic_problem
  in
  check_bool "monotone improvement" true
    (r.Annealer.final_cost <= quadratic_problem.Annealer.cost 50.0)

(* The move-based interface on the same quadratic: state is a mutable
   driver variable, the annealer sees only deltas. *)
let run_moves_quadratic ?should_stop seed iterations =
  let cost x = (x -. 7.0) *. (x -. 7.0) in
  let cur = ref 50.0 and staged = ref 50.0 and best = ref 50.0 in
  let problem =
    {
      Annealer.propose = (fun rng -> Rng.float_in rng (-3.0) 3.0);
      delta_cost =
        (fun dx ->
          staged := !cur +. dx;
          cost !staged -. cost !cur);
      commit = (fun _ -> cur := !staged);
      reject = (fun _ -> staged := !cur);
    }
  in
  let r =
    Annealer.run_moves
      ~on_improve:(fun ~cost:_ ~step:_ -> best := !cur)
      ?should_stop ~rng:(Rng.create ~seed)
      ~schedule:(Schedule.geometric ~t0:100.0 ~alpha:0.97 ~t_min:1e-4 ())
      ~iterations ~initial_cost:(cost 50.0) problem
  in
  (r, !best)

let test_run_moves_finds_minimum () =
  let r, best = run_moves_quadratic 3 2000 in
  check_bool "near 7" true (abs_float (best -. 7.0) < 0.5);
  check_bool "best cost small" true (r.Annealer.mv_best_cost < 0.5)

let test_run_moves_matches_run () =
  (* Same RNG draws, same Metropolis rule: the move-based run must make
     exactly the decisions of the functional one (costs drift only by
     delta-accumulation rounding). *)
  let r = run_quadratic 9 and m, best = run_moves_quadratic 9 2000 in
  let close = Alcotest.(check (float 1e-6)) in
  close "same best state" r.Annealer.best best;
  close "same best cost" r.Annealer.best_cost m.Annealer.mv_best_cost;
  close "same final cost" r.Annealer.final_cost m.Annealer.mv_final_cost;
  close "same average" r.Annealer.average_cost m.Annealer.mv_average_cost;
  Alcotest.(check int) "same evaluations" r.Annealer.evaluations m.Annealer.mv_evaluations;
  Alcotest.(check int) "same acceptances" r.Annealer.acceptances m.Annealer.mv_acceptances

let test_run_moves_statistics () =
  let r, _ = run_moves_quadratic 3 2000 in
  check_bool "best <= final" true (r.Annealer.mv_best_cost <= r.Annealer.mv_final_cost);
  check_bool "avg >= best" true (r.Annealer.mv_average_cost >= r.Annealer.mv_best_cost);
  check_bool "evaluations = iterations + initial" true (r.Annealer.mv_evaluations = 2001);
  check_bool "some acceptances" true (r.Annealer.mv_acceptances > 0)

let test_run_moves_zero_iterations () =
  let r, _ = run_moves_quadratic 1 0 in
  check_float "best is initial" ((50.0 -. 7.0) ** 2.0) r.Annealer.mv_best_cost;
  check_bool "one evaluation" true (r.Annealer.mv_evaluations = 1)

let test_run_moves_should_stop () =
  let r, _ =
    run_moves_quadratic ~should_stop:(fun ~best_cost:_ ~step -> step >= 10) 2 1000
  in
  check_bool "stopped early" true (r.Annealer.mv_evaluations <= 11)

let prop_best_is_min_of_accepted =
  QCheck.Test.make ~name:"annealer best <= every accepted cost" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let accepted = ref [] in
      let r =
        Annealer.run
          ~on_accept:(fun _ ~cost ~step:_ -> accepted := cost :: !accepted)
          ~rng:(Rng.create ~seed)
          ~schedule:(Schedule.geometric ())
          ~iterations:200 quadratic_problem
      in
      List.for_all (fun c -> r.Annealer.best_cost <= c +. 1e-9) !accepted)

let suite =
  [
    ("geometric schedule", `Quick, test_geometric);
    ("geometric rejects bad parameters", `Quick, test_geometric_invalid);
    ("linear schedule", `Quick, test_linear);
    ("constant schedule", `Quick, test_constant);
    ("negative step raises", `Quick, test_negative_step);
    ("annealer finds a quadratic minimum", `Quick, test_annealer_finds_minimum);
    ("annealer statistics are consistent", `Quick, test_annealer_statistics);
    ("annealer is deterministic per seed", `Quick, test_annealer_deterministic);
    ("zero iterations returns the initial state", `Quick, test_annealer_zero_iterations);
    ("on_accept hook fires per acceptance", `Quick, test_annealer_on_accept_hook);
    ("should_stop ends the run early", `Quick, test_annealer_should_stop);
    ("greedy at low temperature", `Quick, test_annealer_greedy_at_low_temp);
    ("run_moves finds a quadratic minimum", `Quick, test_run_moves_finds_minimum);
    ("run_moves mirrors run decision-for-decision", `Quick, test_run_moves_matches_run);
    ("run_moves statistics are consistent", `Quick, test_run_moves_statistics);
    ("run_moves zero iterations", `Quick, test_run_moves_zero_iterations);
    ("run_moves should_stop ends early", `Quick, test_run_moves_should_stop);
  ]
  @ List.map QCheck_alcotest.to_alcotest [ prop_best_is_min_of_accepted ]

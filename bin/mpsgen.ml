(* mpsgen: command-line front end.

   - [mpsgen list]                    print the Table 1 inventory
   - [mpsgen generate CIRCUIT]        build a structure, report stats
   - [mpsgen instantiate CIRCUIT]     build + query one dimension vector
   - [mpsgen query CIRCUIT -i FILE]   query a saved structure
   - [mpsgen verify CIRCUIT -i FILE]  integrity-check a saved structure
   - [mpsgen extend CIRCUIT -i FILE]  resume exploration on a saved structure
   - [mpsgen experiments TARGET]      regenerate a table / figure / ablation
   - [mpsgen serve -d DIR]            run the mpsd structure-serving daemon
   - [mpsgen health ADDR]             readiness probe against a running mpsd
   - [mpsgen bench-serve CIRCUIT]     end-to-end serving throughput/latency

   [generate] and [extend] checkpoint with [--checkpoint FILE
   --checkpoint-every N --max-seconds S] and resume automatically when
   the checkpoint file exists. *)

open Cmdliner
open Mps_geometry
open Mps_netlist
open Mps_core

(* Clean one-line failure: no raw Sys_error backtraces out of the CLI. *)
let die fmt =
  Format.ksprintf
    (fun msg ->
      Format.eprintf "mpsgen: error: %s@." msg;
      exit 1)
    fmt

let load_structure ~circuit ~path =
  match Codec.load ~circuit ~path with
  | s -> s
  | exception Codec.Error e -> die "%s: %s" path (Codec.error_to_string e)
  | exception Sys_error msg -> die "%s" msg

(* Structure file format selection, shared by generate/pack/compact:
   [auto] picks by destination extension (.mpsz is the zero-copy
   container, anything else the text document). *)
type file_format = Fmt_auto | Fmt_text | Fmt_mpsz

let resolve_format format path =
  match format with
  | Fmt_text -> `Text
  | Fmt_mpsz -> `Mpsz
  | Fmt_auto -> if Filename.check_suffix path ".mpsz" then `Mpsz else `Text

let save_structure ?(packed = false) ~format structure ~path =
  match resolve_format format path with
  | `Text -> (
    match Codec.save structure ~path with
    | () -> ()
    | exception Codec.Error e -> die "%s: %s" path (Codec.error_to_string e))
  | `Mpsz -> (
    match Zcodec.save ~packed structure ~path with
    | () -> ()
    | exception Zcodec.Error e -> die "%s: %s" path (Zcodec.error_to_string e))

let format_arg =
  let fmt_conv =
    Arg.enum [ ("auto", Fmt_auto); ("text", Fmt_text); ("mpsz", Fmt_mpsz) ]
  in
  Arg.(
    value
    & opt fmt_conv Fmt_auto
    & info [ "format" ] ~docv:"FMT"
        ~doc:
          "Structure file format: $(b,text) (the line-oriented document), $(b,mpsz) \
           (the zero-copy binary container, loaded by mapping instead of \
           recompiling), or $(b,auto) (default: by destination extension, \
           $(b,.mpsz) means the container).  Reads always sniff the file magic, so \
           either format loads everywhere regardless of this flag.")

let budget_conv =
  let parse = function
    | "quick" -> Ok Mps_experiments.Experiments.Quick
    | "full" -> Ok Mps_experiments.Experiments.Full
    | s -> Error (`Msg (Printf.sprintf "unknown budget %S (quick|full)" s))
  in
  let print fmt = function
    | Mps_experiments.Experiments.Quick -> Format.fprintf fmt "quick"
    | Mps_experiments.Experiments.Full -> Format.fprintf fmt "full"
  in
  Arg.conv (parse, print)

let budget_arg =
  Arg.(
    value
    & opt budget_conv Mps_experiments.Experiments.Quick
    & info [ "b"; "budget" ] ~docv:"BUDGET" ~doc:"Generation budget: quick or full.")

let circuit_conv =
  let parse s =
    match Benchmarks.by_name s with
    | c -> Ok c
    | exception Not_found ->
      let names = List.map (fun c -> c.Circuit.name) Benchmarks.all in
      Error (`Msg (Printf.sprintf "unknown circuit %S; known: %s" s (String.concat ", " names)))
  in
  Arg.conv (parse, fun fmt c -> Format.fprintf fmt "%s" c.Circuit.name)

let circuit_arg =
  Arg.(
    required
    & pos 0 (some circuit_conv) None
    & info [] ~docv:"CIRCUIT" ~doc:"Benchmark circuit name from Table 1 (see $(b,mpsgen list)).")

let jobs_arg =
  Arg.(
    value
    & opt int (Mps_parallel.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel phases (default: the machine's recommended \
           domain count, capped at 8).  Results are bit-identical at any job count.")

(* list *)

let list_cmd =
  let run () = print_string (Mps_experiments.Experiments.table1 ()) in
  Cmd.v (Cmd.info "list" ~doc:"Print the Table 1 benchmark inventory.") Term.(const run $ const ())

(* generate *)

(* Checkpoint plumbing shared by generate and extend: fold the flags
   into the generator config, resume automatically when the checkpoint
   file already exists, and retire a spent checkpoint once its run
   completed and the result is safely on disk. *)

let with_checkpointing base ~checkpoint ~checkpoint_every ~max_seconds =
  {
    base with
    Generator.checkpoint_path = checkpoint;
    checkpoint_every;
    max_seconds;
  }

let resume_if_checkpointed ~circuit ~checkpoint ~config ~jobs ~fresh =
  match checkpoint with
  | Some path when Sys.file_exists path -> (
    match Checkpoint.load ~circuit ~path with
    | cp ->
      Format.printf "Resuming from checkpoint %s (step %d, %d placements)...@." path
        cp.Checkpoint.step
        (Structure.n_placements cp.Checkpoint.structure);
      (* Parallel checkpoints carry per-walk streams and resume through
         the pool; sequential ones keep the original single-walk path. *)
      (match cp.Checkpoint.par with
      | Some _ -> Generator.resume_par ~config ~jobs cp
      | None -> Generator.resume ~config cp)
    | exception Codec.Error e -> die "checkpoint %s: %s" path (Codec.error_to_string e))
  | _ -> fresh ()

let report_stats stats =
  Format.printf
    "  placements stored: %d@.  coverage: %.4f@.  explorer steps: %d@.  dropped: %d@.  \
     CPU time: %s@."
    stats.Generator.placements_stored stats.Generator.coverage
    stats.Generator.explorer_steps stats.Generator.candidates_dropped
    (Mps_experiments.Text_table.seconds stats.Generator.generation_seconds);
  if stats.Generator.deadline_hit then
    Format.printf
      "  stopped early: wall-clock deadline reached (rerun to resume from the checkpoint)@."

let retire_checkpoint ~stats ~saved checkpoint =
  match checkpoint with
  | Some path when (not stats.Generator.deadline_hit) && saved && Sys.file_exists path ->
    (try Sys.remove path with Sys_error _ -> ());
    Format.printf "  removed spent checkpoint %s@." path
  | _ -> ()

let generate circuit budget svg_dir save_path format checkpoint checkpoint_every
    max_seconds jobs =
  let config =
    with_checkpointing
      (Mps_experiments.Experiments.generator_config budget circuit)
      ~checkpoint ~checkpoint_every ~max_seconds
  in
  let structure, stats =
    resume_if_checkpointed ~circuit ~checkpoint ~config ~jobs ~fresh:(fun () ->
        Format.printf "Generating a multi-placement structure for %s (%d jobs)...@."
          circuit.Circuit.name jobs;
        Generator.generate_par ~config ~jobs circuit)
  in
  report_stats stats;
  print_string (Structure.describe structure);
  (match save_path with
  | None -> ()
  | Some path ->
    save_structure ~format structure ~path;
    Format.printf "  saved structure to %s@." path);
  retire_checkpoint ~stats ~saved:(save_path <> None) checkpoint;
  match svg_dir with
  | None -> ()
  | Some dir ->
    let die_w, die_h = Structure.die structure in
    let best = Structure.backup structure in
    let rects = Stored.instantiate best best.Stored.best_dims in
    let path =
      Filename.concat dir
        (String.map (function ' ' -> '_' | c -> c) circuit.Circuit.name ^ ".svg")
    in
    Mps_render.Svg.save ~path ~title:circuit.Circuit.name circuit ~die_w ~die_h rects;
    Format.printf "  wrote %s@." path

let svg_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "svg" ] ~docv:"DIR" ~doc:"Also write the best placement as an SVG into $(docv).")

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "save" ] ~docv:"FILE"
        ~doc:"Persist the generated structure to $(docv) (reload with $(b,mpsgen query)).")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Snapshot the generation run to $(docv) (written atomically) so a crash or \
           kill loses at most $(b,--checkpoint-every) steps of work.  When $(docv) \
           already exists the run resumes from it automatically.")

let checkpoint_every_arg =
  Arg.(
    value
    & opt int 5
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Write the checkpoint every $(docv) explorer steps (with $(b,--checkpoint)).")

let max_seconds_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "max-seconds" ] ~docv:"S"
        ~doc:
          "Wall-clock deadline: stop gracefully after $(docv) seconds, keep the best \
           structure so far, and leave a final checkpoint to resume from.")

let generate_cmd =
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a multi-placement structure and report statistics.")
    Term.(
      const generate $ circuit_arg $ budget_arg $ svg_arg $ save_arg $ format_arg
      $ checkpoint_arg $ checkpoint_every_arg $ max_seconds_arg $ jobs_arg)

(* instantiate *)

type point =
  | Center
  | Min
  | Max
  | Random of int

let point_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "center" ] -> Ok Center
    | [ "min" ] -> Ok Min
    | [ "max" ] -> Ok Max
    | [ "random" ] -> Ok (Random 1)
    | [ "random"; seed ] -> (
      match int_of_string_opt seed with
      | Some n -> Ok (Random n)
      | None -> Error (`Msg "random:<seed> needs an integer seed"))
    | _ -> Error (`Msg (Printf.sprintf "unknown point %S (center|min|max|random[:seed])" s))
  in
  let print fmt = function
    | Center -> Format.fprintf fmt "center"
    | Min -> Format.fprintf fmt "min"
    | Max -> Format.fprintf fmt "max"
    | Random n -> Format.fprintf fmt "random:%d" n
  in
  Arg.conv (parse, print)

let point_arg =
  Arg.(
    value
    & opt point_conv Center
    & info [ "p"; "point" ] ~docv:"POINT"
        ~doc:"Dimension vector to query: center, min, max or random[:seed].")

let instantiate circuit budget point =
  let config = Mps_experiments.Experiments.generator_config budget circuit in
  let structure, _ = Generator.generate ~config circuit in
  let bounds = Circuit.dim_bounds circuit in
  let dims =
    match point with
    | Center -> Dimbox.center bounds
    | Min -> Circuit.min_dims circuit
    | Max -> Circuit.max_dims circuit
    | Random seed -> Dimbox.random_dims (Mps_rng.Rng.create ~seed) bounds
  in
  let engine = Structure.Engine.create structure in
  let session = Structure.Engine.new_session () in
  let answer, stored = Structure.Engine.query engine session dims in
  let rects, cost = Structure.Engine.instantiate_cost engine session dims in
  let die_w, die_h = Structure.die structure in
  (match answer with
  | Structure.Stored_placement id ->
    Format.printf "Query hit stored placement #%d (avg cost %.1f, best cost %.1f).@." id
      stored.Stored.avg_cost stored.Stored.best_cost
  | Structure.Fallback -> Format.printf "Query fell back to the template placement.@."
  | Structure.Out_of_domain ->
    Format.printf "Dimensions outside the designer space: backup template used.@.");
  Format.printf "Instantiated floorplan (cost %.1f):@.%s" cost
    (Mps_render.Ascii.render ~max_cols:64 circuit ~die_w ~die_h rects)

let instantiate_cmd =
  Cmd.v
    (Cmd.info "instantiate"
       ~doc:"Generate a structure, query one dimension vector and print the floorplan.")
    Term.(const instantiate $ circuit_arg $ budget_arg $ point_arg)

(* query a saved structure *)

let dims_of_point circuit point =
  let bounds = Circuit.dim_bounds circuit in
  match point with
  | Center -> Dimbox.center bounds
  | Min -> Circuit.min_dims circuit
  | Max -> Circuit.max_dims circuit
  | Random seed -> Dimbox.random_dims (Mps_rng.Rng.create ~seed) bounds

(* Explicit dimension vectors: "WxH,WxH,..." one pair per block.  Any
   shape or range problem is a clean one-line error, never a raw
   exception out of the CLI. *)
let parse_dims circuit s =
  let pair tok =
    match String.split_on_char 'x' (String.trim tok) with
    | [ w; h ] -> (
      match (int_of_string_opt w, int_of_string_opt h) with
      | Some w, Some h -> (w, h)
      | _ -> die "bad dimension pair %S (expected WxH, e.g. 12x8)" tok)
    | _ -> die "bad dimension pair %S (expected WxH, e.g. 12x8)" tok
  in
  let pairs =
    String.split_on_char ',' s |> List.filter (fun t -> String.trim t <> "")
    |> List.map pair
  in
  let n = Circuit.n_blocks circuit in
  if List.length pairs <> n then
    die "expected %d WxH pairs for %s, got %d" n circuit.Circuit.name (List.length pairs);
  Dims.of_pairs (Array.of_list pairs)

let load_salvaged ~circuit ~path =
  match Codec.load_salvage ~circuit ~path with
  | Ok sv ->
    Format.printf "Salvaged %d placements (%d dropped, %d quarantined%s%s).@."
      sv.Codec.recovered sv.Codec.dropped sv.Codec.quarantined
      (if sv.Codec.backup_recovered then "" else ", backup lost")
      (if sv.Codec.checksum_ok then "" else ", checksum bad");
    sv.Codec.structure
  | Error e -> die "%s: %s" path (Codec.error_to_string e)

(* Sniff the container magic without reading the whole file, so query
   can map a [.mpsz] zero-copy instead of recompiling it. *)
let file_is_mpsz path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic 8 with
        | head -> Zcodec.is_magic head
        | exception End_of_file -> false)

let query circuit path point dims_opt salvage =
  let engine =
    if (not salvage) && file_is_mpsz path then
      (* zero-copy: map the compiled engine, skip recompilation *)
      match Zcodec.load ~circuit path with
      | v -> v.Zcodec.engine
      | exception Zcodec.Error e -> die "%s: %s" path (Zcodec.error_to_string e)
    else
      Structure.Engine.create
        (if salvage then load_salvaged ~circuit ~path
         else load_structure ~circuit ~path)
  in
  let dims =
    match dims_opt with
    | Some s -> parse_dims circuit s
    | None -> dims_of_point circuit point
  in
  if not (Circuit.dims_valid circuit dims) then
    die "dimension vector outside the designer range for %s (see mpsgen list)"
      circuit.Circuit.name;
  let session = Structure.Engine.new_session () in
  let answer, stored = Structure.Engine.query engine session dims in
  let rects, cost = Structure.Engine.instantiate_cost engine session dims in
  let die_w, die_h = Structure.Engine.die engine in
  (match answer with
  | Structure.Stored_placement id ->
    Format.printf "Hit stored placement #%d (avg %.1f, best %.1f).@." id
      stored.Stored.avg_cost stored.Stored.best_cost
  | Structure.Fallback -> Format.printf "Uncovered dimensions: backup template used.@."
  | Structure.Out_of_domain ->
    Format.printf "Dimensions outside the designer space: backup template used.@.");
  Format.printf "Floorplan (cost %.1f):@.%s" cost
    (Mps_render.Ascii.render ~max_cols:64 circuit ~die_w ~die_h rects)

let load_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "i"; "load" ] ~docv:"FILE" ~doc:"Structure file written by $(b,mpsgen generate --save).")

let salvage_arg =
  Arg.(
    value & flag
    & info [ "salvage" ]
        ~doc:
          "Recover what is intact from a corrupt or truncated file instead of refusing \
           it; queries over lost territory fall back to the backup placement.")

let dims_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dims" ] ~docv:"DIMS"
        ~doc:
          "Explicit dimension vector, one WxH pair per block, comma separated (e.g. \
           $(b,12x8,10x20)).  Overrides $(b,--point).  Out-of-range vectors are \
           rejected with exit code 1.")

let query_cmd =
  Cmd.v
    (Cmd.info "query" ~doc:"Query a saved multi-placement structure (no regeneration).")
    Term.(const query $ circuit_arg $ load_arg $ point_arg $ dims_arg $ salvage_arg)

(* verify a saved structure *)

(* Exit codes double as a machine interface (the CI serve smoke job
   scripts against them): 0 intact, 1 corrupt or for another circuit,
   2 missing or unreadable. *)
let verify circuit path quiet =
  match Codec.load ~circuit ~path with
  | structure ->
    (* load already proved: readable, version/checksum intact, circuit
       identity, every placement well-formed, validity boxes disjoint
       (Structure.of_placements).  Report what was checked. *)
    if not quiet then begin
      let die_w, die_h = Structure.die structure in
      Format.printf
        "%s: OK@.  format: %s@.  checksum: valid@.  circuit: %s (%d blocks, %d \
         nets)@.  die: %dx%d@.  placements: %d (%d explored), validity boxes \
         disjoint@.  coverage: %.6f@."
        path
        (if file_is_mpsz path then "mpsz container" else "text document")
        circuit.Circuit.name (Circuit.n_blocks circuit) (Circuit.n_nets circuit)
        die_w die_h (Structure.n_placements structure)
        (Structure.n_explored structure) (Structure.coverage structure)
    end
  | exception Codec.Error e ->
    if not quiet then
      Format.eprintf "%s: verify failed: %s@." path (Codec.error_to_string e);
    exit (match e with Codec.Io_error _ -> 2 | Codec.Corrupt _ | Codec.Circuit_mismatch _ -> 1)
  | exception Sys_error msg ->
    if not quiet then Format.eprintf "%s: verify failed: %s@." path msg;
    exit 2

let quiet_arg =
  Arg.(
    value & flag
    & info [ "q"; "quiet" ]
        ~doc:"Print nothing; communicate through the exit code only.")

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check a saved structure end-to-end: checksum, format version, circuit \
          identity, placement well-formedness and validity-box disjointness.  Exits 0 \
          when the file is intact, 1 when it is corrupt or belongs to another circuit, \
          2 when it is missing or unreadable.")
    Term.(const verify $ circuit_arg $ load_arg $ quiet_arg)

(* pack: convert between the text document and the MPSZ container *)

let file_bytes path =
  match Unix.stat path with
  | st -> st.Unix.st_size
  | exception Unix.Unix_error _ -> 0

let pack circuit path out format =
  let structure = load_structure ~circuit ~path in
  let dest =
    match out with
    | Some p -> p
    | None ->
      (* default: the sibling file in the other format *)
      if Filename.check_suffix path ".mpsz" then Filename.chop_suffix path ".mpsz"
      else path ^ ".mpsz"
  in
  save_structure ~format structure ~path:dest;
  let before = file_bytes path and after = file_bytes dest in
  Format.printf "packed %s (%d bytes) -> %s (%d bytes, %.2fx)@." path before dest after
    (if after > 0 then float_of_int before /. float_of_int after else 0.)

let pack_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:
          "Destination (default: the input path with $(b,.mpsz) appended, or \
           stripped when converting a container back to text).")

let pack_cmd =
  Cmd.v
    (Cmd.info "pack"
       ~doc:
         "Convert a structure file between formats: text document to zero-copy MPSZ \
          container (the default direction) or back.  The container stores the \
          compiled engine, so later loads map it in O(1) instead of recompiling.")
    Term.(const pack $ circuit_arg $ load_arg $ pack_out_arg $ format_arg)

(* compact: dedupe/merge/prune a saved structure *)

let compact circuit path out audit_gate =
  let structure = load_structure ~circuit ~path in
  let compacted, st = Compact.run ~audit:audit_gate ~measure:true structure in
  print_string (Compact.stats_to_string st);
  print_newline ();
  if st.Compact.reverted then
    Format.printf "audit regression: compaction reverted, rewriting the input as-is@.";
  let dest = Option.value out ~default:path in
  (* compact's output is the archival form: half-packed coordinate
     sections when the destination is a container *)
  save_structure ~packed:true ~format:Fmt_auto compacted ~path:dest;
  Format.printf "wrote %s@." dest

let compact_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE"
        ~doc:
          "Where to write the compacted structure (default: overwrite the input).  \
           A $(b,.mpsz) extension writes the zero-copy container.")

let no_audit_arg =
  Arg.(
    value & flag
    & info [ "no-audit" ]
        ~doc:
          "Skip the post-compaction audit gate.  Without it a compaction that \
           worsens the audit is kept instead of reverted — only for debugging the \
           pass itself.")

let compact_cmd =
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "Shrink a saved structure without changing any query answer: share \
          bit-identical placements, merge adjacent boxes with equal placements, \
          absorb boxes dominated by a cheaper neighbour's expansion, and drop \
          template pieces that answer identically to the backup fallback.  The \
          result is re-audited and the pass reverts itself on any regression.")
    Term.(
      const compact $ circuit_arg $ load_arg $ compact_out_arg
      $ (const not $ no_audit_arg))

(* stats: size accounting for a saved structure *)

let stats circuit path json =
  let raw =
    match Persist.read_file ~path with
    | raw -> raw
    | exception Sys_error msg -> die "%s" msg
  in
  let bytes = String.length raw in
  if Zcodec.is_magic raw then begin
    let v =
      match Zcodec.of_string ~circuit raw with
      | v -> v
      | exception Zcodec.Error e -> die "%s: %s" path (Zcodec.error_to_string e)
    in
    let records = v.Zcodec.n_stored + 1 in
    let dedupe =
      float_of_int (records - v.Zcodec.n_pool) /. float_of_int records
    in
    let header_bytes =
      match v.Zcodec.sections with
      | s :: _ -> 8 * s.Zcodec.off_words
      | [] -> bytes
    in
    if json then begin
      let section_json =
        v.Zcodec.sections
        |> List.map (fun s ->
               Printf.sprintf "    {\"tag\": %S, \"bytes\": %d}" s.Zcodec.tag
                 (8 * s.Zcodec.len_words))
        |> String.concat ",\n"
      in
      Printf.printf
        "{\n\
        \  \"path\": %S,\n\
        \  \"format\": \"mpsz\",\n\
        \  \"bytes\": %d,\n\
        \  \"placements\": %d,\n\
        \  \"pool\": %d,\n\
        \  \"dedupe_ratio\": %.4f,\n\
        \  \"bytes_per_placement\": %.1f,\n\
        \  \"header_bytes\": %d,\n\
        \  \"sections\": [\n%s\n  ]\n\
         }\n"
        path bytes v.Zcodec.n_stored v.Zcodec.n_pool dedupe
        (float_of_int bytes /. float_of_int records)
        header_bytes section_json
    end
    else begin
      Format.printf
        "%s: mpsz container@.  bytes: %d (%.1f per placement)@.  placements: %d (+ \
         backup)@.  coordinate pool: %d arrays (dedupe ratio %.1f%%)@.  header: %d \
         bytes@.  sections:@."
        path bytes
        (float_of_int bytes /. float_of_int records)
        v.Zcodec.n_stored v.Zcodec.n_pool (100. *. dedupe) header_bytes;
      List.iter
        (fun s ->
          Format.printf "    %-4s %8d bytes@." s.Zcodec.tag (8 * s.Zcodec.len_words))
        v.Zcodec.sections
    end
  end
  else begin
    let structure =
      match Codec.of_string ~circuit raw with
      | s -> s
      | exception Codec.Error e -> die "%s: %s" path (Codec.error_to_string e)
    in
    let records = Structure.n_placements structure + 1 in
    if json then
      Printf.printf
        "{\n\
        \  \"path\": %S,\n\
        \  \"format\": \"text\",\n\
        \  \"bytes\": %d,\n\
        \  \"placements\": %d,\n\
        \  \"bytes_per_placement\": %.1f,\n\
        \  \"coverage\": %.6f\n\
         }\n"
        path bytes
        (Structure.n_placements structure)
        (float_of_int bytes /. float_of_int records)
        (Structure.coverage structure)
    else
      Format.printf
        "%s: text document@.  bytes: %d (%.1f per placement)@.  placements: %d (+ \
         backup)@.  coverage: %.6f@.  (pack to .mpsz for per-section accounting and \
         zero-copy loads)@."
        path bytes
        (float_of_int bytes /. float_of_int records)
        (Structure.n_placements structure)
        (Structure.coverage structure)
  end

let stats_json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit machine-readable JSON instead of text.")

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Size accounting for a saved structure: bytes on disk, placement and \
          coordinate-pool counts, dedupe ratio, and (for MPSZ containers) the \
          per-section byte breakdown.")
    Term.(const stats $ circuit_arg $ load_arg $ stats_json_arg)

(* audit a saved structure *)

let audit circuit path salvage json samples seed out jobs =
  let structure =
    if salvage then load_salvaged ~circuit ~path else load_structure ~circuit ~path
  in
  let report =
    Mps_parallel.Pool.with_pool ~jobs (fun pool ->
        Audit.run ~pool ~samples_per_box:samples ~seed structure)
  in
  let rendered = if json then Audit.to_json report else Audit.to_string report in
  (match out with
  | None -> print_string rendered
  | Some p ->
    (try Persist.atomic_write ~path:p rendered
     with Sys_error msg -> die "%s" msg);
    Format.printf "wrote audit report to %s@." p;
    if not json then print_string rendered);
  if Audit.clean report then () else exit 1

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the machine-readable JSON report instead of text.")

let samples_arg =
  Arg.(
    value
    & opt int 12
    & info [ "samples" ] ~docv:"N" ~doc:"Seeded legality samples per validity box.")

let audit_seed_arg =
  Arg.(
    value
    & opt int 7
    & info [ "seed" ] ~docv:"SEED" ~doc:"Seed for the audit's sampled checks.")

let report_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write the report to $(docv).")

let audit_cmd =
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Re-prove every invariant of a saved structure: validity-box disjointness (eq. \
          5), box-in-expansion containment, floorplan legality at box corners and \
          seeded samples, cost-field consistency, backup legality and whole-space \
          query probes.  Exits 1 when any Fatal or Degraded finding survives.")
    Term.(
      const audit $ circuit_arg $ load_arg $ salvage_arg $ json_arg $ samples_arg
      $ audit_seed_arg $ report_out_arg $ jobs_arg)

(* repair a saved structure *)

let repair circuit path reanneal out jobs =
  let structure = load_salvaged ~circuit ~path in
  let config =
    { Repair.default_config with Repair.reanneal_iterations = reanneal }
  in
  let outcome =
    Mps_parallel.Pool.with_pool ~jobs (fun pool -> Repair.run ~pool ~config structure)
  in
  print_string (Audit.to_string outcome.Repair.before);
  Format.printf "%s@." (Repair.describe outcome);
  let dest = Option.value out ~default:path in
  (match Codec.save outcome.Repair.structure ~path:dest with
  | () -> Format.printf "saved repaired structure to %s@." dest
  | exception Codec.Error e -> die "%s: %s" dest (Codec.error_to_string e));
  print_string (Audit.to_string outcome.Repair.after);
  if Repair.clean outcome then () else exit 1

let reanneal_arg =
  Arg.(
    value
    & opt int 0
    & info [ "reanneal" ] ~docv:"N"
        ~doc:
          "Coordinate-annealing budget (iterations) for re-optimizing quarantined \
           territory; 0 leaves quarantined territory to the backup template.")

let repair_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "save" ] ~docv:"FILE"
        ~doc:"Where to write the repaired structure (default: overwrite the input).")

let repair_cmd =
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Salvage a saved structure, audit it, quarantine placements with fatal \
          findings (their territory falls to the backup template), refresh degraded \
          cost fields, optionally re-anneal quarantined boxes, re-audit and save.  \
          Exits 1 when the repaired structure is still not audit-clean.")
    Term.(const repair $ circuit_arg $ load_arg $ reanneal_arg $ repair_out_arg $ jobs_arg)

(* route a floorplan *)

let route circuit budget point =
  let config = Mps_experiments.Experiments.generator_config budget circuit in
  let structure, _ = Generator.generate ~config circuit in
  let dims = dims_of_point circuit point in
  let rects = Structure.instantiate structure dims in
  let die_w, die_h = Structure.die structure in
  let routing = Mps_route.Router.route circuit ~die_w ~die_h rects in
  Format.printf "Routed %d nets: total length %.0f, %d failed, overflow %d@."
    (Array.length routing.Mps_route.Router.nets) routing.Mps_route.Router.total_length
    routing.Mps_route.Router.failed_nets routing.Mps_route.Router.overflow;
  let grid =
    Mps_route.Route_grid.create ~die_w ~die_h
      ~cell:Mps_route.Router.default_config.Mps_route.Router.cell
      ~capacity:Mps_route.Router.default_config.Mps_route.Router.capacity rects
  in
  let wire_points =
    Array.to_list routing.Mps_route.Router.nets
    |> List.concat_map (fun (net : Mps_route.Router.routed_net) ->
           List.map (Mps_route.Route_grid.center_of_cell grid) net.Mps_route.Router.cells)
  in
  print_string
    (Mps_render.Ascii.render_routed ~max_cols:72 circuit ~die_w ~die_h rects ~wire_points)

let route_cmd =
  Cmd.v
    (Cmd.info "route"
       ~doc:"Generate, instantiate and maze-route a floorplan; print the wire overlay.")
    Term.(const route $ circuit_arg $ budget_arg $ point_arg)

(* extend a saved structure *)

let extend circuit path budget seed save_path checkpoint checkpoint_every max_seconds
    jobs =
  let base = Mps_experiments.Experiments.generator_config budget circuit in
  let config =
    with_checkpointing
      { base with Generator.seed; max_placements = base.Generator.max_placements * 2 }
      ~checkpoint ~checkpoint_every ~max_seconds
  in
  let extended, stats =
    resume_if_checkpointed ~circuit ~checkpoint ~config ~jobs ~fresh:(fun () ->
        let structure = load_structure ~circuit ~path in
        Format.printf "Loaded %d explored placements; resuming exploration...@."
          (Structure.n_explored structure);
        Generator.extend ~config structure)
  in
  Format.printf "  now %d explored placements (coverage %.6f, %s CPU)@."
    (Structure.n_explored extended) stats.Generator.coverage
    (Mps_experiments.Text_table.seconds stats.Generator.generation_seconds);
  if stats.Generator.deadline_hit then
    Format.printf
      "  stopped early: wall-clock deadline reached (rerun to resume from the checkpoint)@.";
  let out = Option.value save_path ~default:path in
  (match Codec.save extended ~path:out with
  | () -> Format.printf "  saved to %s@." out
  | exception Codec.Error e -> die "%s: %s" out (Codec.error_to_string e));
  retire_checkpoint ~stats ~saved:true checkpoint

let seed_arg =
  Arg.(
    value
    & opt int 99
    & info [ "seed" ] ~docv:"SEED" ~doc:"Explorer seed for the resumed walk.")

let extend_save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "save" ] ~docv:"FILE"
        ~doc:"Where to write the extended structure (default: overwrite the input).")

let extend_cmd =
  Cmd.v
    (Cmd.info "extend"
       ~doc:"Resume exploration on a saved structure and store the extended result.")
    Term.(
      const extend $ circuit_arg $ load_arg $ budget_arg $ seed_arg $ extend_save_arg
      $ checkpoint_arg $ checkpoint_every_arg $ max_seconds_arg $ jobs_arg)

(* experiments *)

let experiment_targets =
  [
    ("table1", `Table1);
    ("table2", `Table2);
    ("figure5", `Figure5);
    ("figure6", `Figure6);
    ("figure7", `Figure7);
    ("ablation-shrink", `Ablation_shrink);
    ("ablation-explorer", `Ablation_explorer);
    ("ablation-query", `Ablation_query);
    ("ablation-fallback", `Ablation_fallback);
    ("ablation-parasitics", `Ablation_parasitics);
    ("ablation-refine", `Ablation_refine);
    ("synthesis", `Synthesis);
    ("all", `All);
  ]

let target_arg =
  Arg.(
    required
    & pos 0 (some (enum experiment_targets)) None
    & info [] ~docv:"TARGET"
        ~doc:
          "One of: table1, table2, figure5, figure6, figure7, ablation-shrink, \
           ablation-explorer, ablation-query, synthesis, all.")

let run_experiment target budget csv_dir =
  let module E = Mps_experiments.Experiments in
  let module Csv = Mps_experiments.Csv in
  let save_csv name content =
    match csv_dir with
    | None -> ()
    | Some dir ->
      let path = Filename.concat dir (name ^ ".csv") in
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content);
      Format.printf "wrote %s@." path
  in
  let run = function
    | `Table1 -> print_string (E.table1 ())
    | `Table2 ->
      let rows, report = E.table2 ~budget () in
      print_string report;
      save_csv "table2" (Csv.table2 rows)
    | `Figure5 -> print_string (E.figure5 ~budget ())
    | `Figure6 ->
      let points, report = E.figure6 ~budget () in
      print_string report;
      save_csv "figure6" (Csv.figure6 points)
    | `Figure7 -> print_string (E.figure7 ~budget ())
    | `Ablation_shrink -> print_string (E.ablation_shrink ~budget ())
    | `Ablation_explorer -> print_string (E.ablation_explorer ~budget ())
    | `Ablation_query -> print_string (E.ablation_query ~budget ())
    | `Ablation_fallback -> print_string (E.ablation_fallback ~budget ())
    | `Ablation_parasitics -> print_string (E.ablation_parasitics ~budget ())
    | `Ablation_refine -> print_string (E.ablation_refine ~budget ())
    | `Synthesis -> print_string (E.synthesis_comparison ~budget ())
    | `All -> assert false
  in
  match target with
  | `All ->
    List.iter
      (fun (_, t) ->
        if t <> `All then begin
          run t;
          print_newline ()
        end)
      experiment_targets
  | t -> run t

let csv_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "csv" ] ~docv:"DIR"
        ~doc:"Also write the experiment's data series as CSV into $(docv) (table2, figure6).")

let experiments_cmd =
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate a table, figure or ablation from the paper.")
    Term.(const run_experiment $ target_arg $ budget_arg $ csv_arg)

(* serve: the mpsd daemon *)

module Server = Mps_serve.Server
module Store = Mps_serve.Store
module Client = Mps_serve.Client
module Wire = Mps_serve.Wire

let parse_tcp spec =
  match String.rindex_opt spec ':' with
  | Some i -> (
    let host = String.sub spec 0 i in
    let port = String.sub spec (i + 1) (String.length spec - i - 1) in
    match int_of_string_opt port with
    | Some p -> Server.Tcp ((if host = "" then "127.0.0.1" else host), p)
    | None -> die "bad address %S (expected HOST:PORT)" spec)
  | None -> die "bad address %S (expected HOST:PORT)" spec

let parse_addr spec =
  match String.index_opt spec ':' with
  | Some 3 when String.sub spec 0 3 = "tcp" ->
    parse_tcp (String.sub spec 4 (String.length spec - 4))
  | _ -> Server.Unix_path spec

let addr_to_string = function
  | Server.Unix_path p -> p
  | Server.Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p

let serve dir socket tcp capacity workers max_connections max_inflight idle_timeout
    drain_timeout stat_interval =
  let store = Store.create ~capacity ~stat_interval ~dir () in
  let workers =
    if workers < 1 then die "--workers must be at least 1"
    else min workers (Domain.recommended_domain_count ())
  in
  let config =
    {
      Server.default_config with
      workers;
      max_connections;
      max_inflight;
      idle_timeout;
      drain_timeout;
    }
  in
  let addr =
    match tcp with
    | Some spec -> parse_tcp spec
    | None ->
      Server.Unix_path (Option.value socket ~default:(Filename.concat dir "mpsd.sock"))
  in
  let server =
    try Server.create ~config ~store addr
    with Unix.Unix_error (e, fn, arg) ->
      die "cannot bind %s: %s(%s): %s" (addr_to_string addr) fn arg
        (Unix.error_message e)
  in
  Server.install_sigterm server;
  Format.printf
    "mpsd: serving structures from %s on %s with %d worker domain(s) (SIGTERM drains)@."
    dir
    (addr_to_string (Server.bound_addr server))
    workers;
  Format.print_flush ();
  Server.run server;
  let s = Server.stats server in
  Format.printf
    "mpsd: drained: %d requests (%d queries, %d degraded) served; %d timeouts, %d \
     overloaded, %d bad, %d store errors; %d connections (%d shed, %d crashed), %d \
     accept failures; %d worker crashes, %d restarts, %d lost replies, %d breaker \
     trips@."
    s.Server.requests_served s.Server.queries_served s.Server.degraded_served
    s.Server.timeouts s.Server.overloaded s.Server.bad_requests s.Server.store_errors
    s.Server.accepted s.Server.shed_connections s.Server.connection_crashes
    s.Server.accept_failures s.Server.worker_crashes s.Server.worker_restarts
    s.Server.worker_lost_replies s.Server.breaker_trips

let store_dir_arg =
  Arg.(
    value
    & opt string "."
    & info [ "d"; "dir" ] ~docv:"DIR"
        ~doc:
          "Structure store: one $(b,<circuit>.mps) per circuit (spaces as \
           underscores), as written by $(b,mpsgen generate -o).")

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix socket to listen on (default $(b,DIR/mpsd.sock)).")

let tcp_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "tcp" ] ~docv:"HOST:PORT"
        ~doc:"Listen on TCP instead of a Unix socket; port 0 picks a free port.")

let capacity_arg =
  Arg.(
    value
    & opt int 8
    & info [ "capacity" ] ~docv:"N" ~doc:"Compiled engines kept live (LRU beyond).")

let workers_arg =
  Arg.(
    value
    & opt int 1
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Worker domains serving connections (capped at the host's core count).  \
           Each worker is crash-isolated and restarted under exponential backoff; \
           a restart storm trips a circuit breaker into degraded single-worker \
           mode.")

let max_connections_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.max_connections
    & info [ "max-connections" ] ~docv:"N"
        ~doc:"Connections beyond $(docv) are told overloaded and closed.")

let max_inflight_arg =
  Arg.(
    value
    & opt int Server.default_config.Server.max_inflight
    & info [ "max-inflight" ] ~docv:"N"
        ~doc:"Concurrently served requests beyond $(docv) are shed.")

let idle_timeout_arg =
  Arg.(
    value
    & opt float Server.default_config.Server.idle_timeout
    & info [ "idle-timeout" ] ~docv:"S" ~doc:"Drop connections silent for $(docv) seconds.")

let drain_timeout_arg =
  Arg.(
    value
    & opt float Server.default_config.Server.drain_timeout
    & info [ "drain-timeout" ] ~docv:"S"
        ~doc:"Seconds a graceful stop waits for in-flight requests.")

let stat_interval_arg =
  Arg.(
    value
    & opt float 0.05
    & info [ "stat-interval" ] ~docv:"S"
        ~doc:
          "Debounce hot-reload detection: re-stat a circuit's source file at most \
           once per $(docv) seconds (0 stats on every request).  A repaired file is \
           picked up within the interval; meanwhile requests cost no stat syscall.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run mpsd: serve saved multi-placement structures over a length-prefixed \
          binary protocol with per-request deadlines, bounded load shedding, hot \
          reload after $(b,mpsgen repair) (epoch-stamped replies), and degraded-mode \
          answers (flagged, never silently wrong) for structures with audit findings.  \
          With $(b,--workers) the connections are served by a pool of supervised, \
          crash-isolated worker domains; $(b,mpsgen health) probes the pool's \
          readiness.  SIGTERM drains gracefully.")
    Term.(
      const serve $ store_dir_arg $ socket_arg $ tcp_arg $ capacity_arg $ workers_arg
      $ max_connections_arg $ max_inflight_arg $ idle_timeout_arg $ drain_timeout_arg
      $ stat_interval_arg)

(* health: the readiness probe *)

(* Exit codes are the machine interface (orchestrator probes script
   against them): 0 ready, 1 not ready or unreachable. *)
let health_probe addr_spec timeout =
  let addr = parse_addr addr_spec in
  let client = Client.connect addr in
  match Client.health ~budget:timeout client with
  | Ok h ->
    Format.printf "%s@." (Wire.health_to_string h);
    if not h.Wire.ready then exit 1
  | Error e ->
    (* a daemon whose workers are all down cannot serve even the
       probe: unreachable IS the not-ready signal *)
    Format.printf "mpsd at %s: not ready: %s@." (addr_to_string addr)
      (Client.error_to_string e);
    exit 1

let health_addr_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"ADDR"
        ~doc:"Daemon address: a Unix socket path, or $(b,tcp:HOST:PORT).")

let health_timeout_arg =
  Arg.(
    value
    & opt float 2.0
    & info [ "timeout" ] ~docv:"S" ~doc:"Probe budget in seconds.")

let health_cmd =
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Probe a running mpsd: print the supervisor's health snapshot (readiness, \
          draining and circuit-breaker flags, per-worker state with restart counts \
          and queue depths, generation epoch) and exit 0 when ready, 1 when \
          not ready or unreachable — the shape an orchestrator's readiness probe \
          wants.")
    Term.(const health_probe $ health_addr_arg $ health_timeout_arg)

(* bench-serve: end-to-end serving throughput and latency *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0 else sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1))))

(* The sizing-loop traffic pattern (bench/main.ml): small bumps on one
   block axis with occasional jumps to another stored operating
   region, so consecutive queries exercise the engine's hot-box
   cache the way a synthesis loop would. *)
let walk_step rng structure bounds current =
  let stored = Structure.placements structure in
  if Mps_rng.Rng.int rng 64 = 0 then
    stored.(Mps_rng.Rng.int rng (Array.length stored)).Stored.best_dims
  else begin
    let d = current in
    let i = Mps_rng.Rng.int rng (Dims.n_blocks d) in
    let delta = if Mps_rng.Rng.int rng 2 = 0 then 1 else -1 in
    let d' =
      if Mps_rng.Rng.int rng 2 = 0 then Dims.set_width d i (max 1 (Dims.width d i + delta))
      else Dims.set_height d i (max 1 (Dims.height d i + delta))
    in
    Dimbox.clamp bounds d'
  end

(* One measurement's aggregate numbers. *)
type bench_serve_row = {
  bs_transport : string;
  bs_workers : int;
  bs_served : int;
  bs_seconds : float;
  bs_rate : float;
  bs_p50 : float;
  bs_p99 : float;
  bs_ring : int;
  bs_mismatches : int;
  bs_errors : int;
  bs_degraded : int;
}

let bench_serve circuit budget batch requests clients workers attach out jobs transport
    depth =
  let config = Mps_experiments.Experiments.generator_config budget circuit in
  Format.printf "bench-serve: generating %s (%s budget)...@." circuit.Circuit.name
    (match budget with Mps_experiments.Experiments.Quick -> "quick" | _ -> "full");
  Format.print_flush ();
  let structure, _ = Generator.generate_par ~config ~jobs circuit in
  (* the in-process oracle every served answer is checked against *)
  let engine = Structure.Engine.create structure in
  let name = circuit.Circuit.name in
  let bounds = Circuit.dim_bounds circuit in
  let per_client = max 1 (requests / max 1 clients) in
  (* Everything that is not serving happens outside the timed window:
     each client pregenerates a pool of sizing-walk batches and cycles
     them during the run (the repetition re-exercises the same validity
     boxes, which is what a sizing loop does anyway), then cross-checks
     every served answer against the in-process engine afterwards. *)
  let distinct = min per_client 8 in
  let run_measurement ~label ~shm ~nw addr =
    let ready = Atomic.make 0 in
    let go = Atomic.make false in
    let run_client k =
      let rng = Mps_rng.Rng.create ~seed:(1000 + k) in
      let client = Client.connect ~shm addr in
      let session = Structure.Engine.new_session () in
      let current = ref (Dimbox.center bounds) in
      let pool =
        Array.init distinct (fun _ ->
            Array.init batch (fun _ ->
                current := walk_step rng structure bounds !current;
                !current))
      in
      let latencies = Array.make per_client 0.0 in
      let replies = Array.make per_client [||] in
      let errors = ref 0 and served = ref 0 and degraded = ref 0 in
      (* all clients enter the timed phase together *)
      Atomic.incr ready;
      while not (Atomic.get go) do
        Unix.sleepf 0.001
      done;
      let t_start = Unix.gettimeofday () in
      (* timed phase: pure request/reply traffic; a streak of requests
         failing even through retry-with-backoff means the daemon is
         gone for good — stop burning backoff time on the remainder *)
      let give_up = 8 in
      let streak = ref 0 in
      let completed = ref 0 in
      let take r = function
        | Ok (ids, meta) ->
          streak := 0;
          served := !served + batch;
          if meta.Client.degraded then incr degraded;
          replies.(r) <- ids
        | Error e ->
          incr errors;
          incr streak;
          Format.eprintf "bench-serve: client %d: %s@." k (Client.error_to_string e)
      in
      (try
         if depth <= 1 then
           for r = 0 to per_client - 1 do
             let t0 = Unix.gettimeofday () in
             take r
               (Client.with_retry ~rng client (fun () ->
                    Client.query_ids ~budget:10.0 client ~circuit:name
                      pool.(r mod distinct)));
             latencies.(r) <- Unix.gettimeofday () -. t0;
             incr completed;
             if !streak >= give_up then raise Exit
           done
         else begin
           (* pipelined: windows of [depth] requests in flight at once;
              the per-request latency is the window's wall time split
              evenly — amortized, which is the number that matters for
              a pipelined sizing loop *)
           let r = ref 0 in
           while !r < per_client do
             let count = min depth (per_client - !r) in
             let group = Array.init count (fun j -> pool.((!r + j) mod distinct)) in
             let t0 = Unix.gettimeofday () in
             let results =
               Client.query_ids_pipelined ~budget:10.0 ~depth client ~circuit:name
                 group
             in
             let dt = (Unix.gettimeofday () -. t0) /. float_of_int count in
             Array.iteri
               (fun j out ->
                 take (!r + j) out;
                 latencies.(!r + j) <- dt)
               results;
             r := !r + count;
             completed := !r;
             if !streak >= give_up then raise Exit
           done
         end
       with Exit ->
         Format.eprintf
           "bench-serve: client %d: giving up after %d consecutive failures@." k give_up);
      let t_end = Unix.gettimeofday () in
      let latencies = Array.sub latencies 0 !completed in
      let ring = (Client.stats client).Client.ring_requests in
      Client.close client;
      (* untimed phase: every served answer against the oracle *)
      let expected =
        Array.map
          (fun dims -> Array.map (Structure.Engine.query_id engine session) dims)
          pool
      in
      let mismatches = ref 0 in
      Array.iteri
        (fun r ids ->
          if Array.length ids > 0 then
            Array.iteri
              (fun i id -> if id <> expected.(r mod distinct).(i) then incr mismatches)
              ids)
        replies;
      (latencies, !served, !mismatches, !errors, !degraded, ring, t_start, t_end)
    in
    Format.printf
      "bench-serve: [%s] %d client domain(s) x %d requests x %d queries on %s@." label
      clients per_client batch (addr_to_string addr);
    Format.print_flush ();
    let domains = Array.init clients (fun k -> Domain.spawn (fun () -> run_client k)) in
    while Atomic.get ready < clients do
      Unix.sleepf 0.001
    done;
    Atomic.set go true;
    let results = Array.map Domain.join domains in
    let seconds =
      let starts = Array.map (fun (_, _, _, _, _, _, s, _) -> s) results in
      let ends = Array.map (fun (_, _, _, _, _, _, _, e) -> e) results in
      Array.fold_left max ends.(0) ends -. Array.fold_left min starts.(0) starts
    in
    let latencies =
      Array.concat
        (Array.to_list (Array.map (fun (l, _, _, _, _, _, _, _) -> l) results))
    in
    Array.sort compare latencies;
    let sum f = Array.fold_left (fun acc r -> acc + f r) 0 results in
    let served = sum (fun (_, s, _, _, _, _, _, _) -> s) in
    let row =
      {
        bs_transport = label;
        bs_workers = nw;
        bs_served = served;
        bs_seconds = seconds;
        bs_rate = float_of_int served /. seconds;
        bs_p50 = 1e6 *. percentile latencies 0.50;
        bs_p99 = 1e6 *. percentile latencies 0.99;
        bs_ring = sum (fun (_, _, _, _, _, g, _, _) -> g);
        bs_mismatches = sum (fun (_, _, m, _, _, _, _, _) -> m);
        bs_errors = sum (fun (_, _, _, e, _, _, _, _) -> e);
        bs_degraded = sum (fun (_, _, _, _, d, _, _, _) -> d);
      }
    in
    Format.printf
      "bench-serve: [%s] workers=%d: %d queries in %.3f s (%.0f served queries/s); \
       request p50 %.0f us, p99 %.0f us; %d over ring; %d mismatches, %d errors, %d \
       degraded replies@."
      label nw row.bs_served row.bs_seconds row.bs_rate row.bs_p50 row.bs_p99
      row.bs_ring row.bs_mismatches row.bs_errors row.bs_degraded;
    Format.print_flush ();
    row
  in
  let label =
    match transport with `Unix -> "unix" | `Tcp -> "tcp" | `Shm -> "shm"
  in
  let main_row, baseline, tcp_row =
    match attach with
    | Some spec ->
      (* a remote daemon's worker count is whatever it was started
         with; no sweep, just the one measurement.  --transport=shm
         against an attached daemon asks for the ring — only sensible
         when the daemon is on this host. *)
      ( run_measurement ~label ~shm:(transport = `Shm) ~nw:workers (parse_addr spec),
        None, None )
    | None ->
      let dir =
        Filename.concat (Filename.get_temp_dir_name ())
          (Printf.sprintf "mpsd-bench.%d" (Unix.getpid ()))
      in
      (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      let store0 = Store.create ~dir () in
      let path = Store.path_for store0 circuit.Circuit.name in
      (match Codec.save structure ~path with
      | () -> ()
      | exception Codec.Error e -> die "%s: %s" path (Codec.error_to_string e));
      (* the MPSZ container too, so ring replies come back as
         zero-copy descriptors into the client-mapped container *)
      let zpath = Store.zpath_for store0 circuit.Circuit.name in
      (match Zcodec.save structure ~path:zpath with
      | () -> ()
      | exception Zcodec.Error e -> die "%s: %s" zpath (Zcodec.error_to_string e));
      (* Each measurement execs a fresh `mpsgen serve` daemon in its
         own PROCESS — co-located the way production is, and with no
         shared OCaml heap: on OCaml 5 every minor collection is a
         stop-the-world across the domains of one runtime, so an
         in-process daemon would let client allocation pause the
         server (and vice versa), flattening the very transport gap
         this benchmark exists to measure. *)
      let free_port () =
        let s = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt s Unix.SO_REUSEADDR true;
        Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
        let port =
          match Unix.getsockname s with Unix.ADDR_INET (_, p) -> p | _ -> assert false
        in
        Unix.close s;
        port
      in
      let hosted ~label ~shm ~tcp nw =
        let sock = Filename.concat dir "mpsd.sock" in
        (try Sys.remove sock with Sys_error _ -> ());
        let addr =
          if tcp then Server.Tcp ("127.0.0.1", free_port ()) else Server.Unix_path sock
        in
        let argv =
          Array.append
            [|
              Sys.executable_name; "serve"; "--dir"; dir; "--workers";
              string_of_int nw; "--max-inflight"; string_of_int (2 * clients);
            |]
            (match addr with
            | Server.Tcp (h, p) -> [| "--tcp"; Printf.sprintf "%s:%d" h p |]
            | Server.Unix_path p -> [| "--socket"; p |])
        in
        let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
        let pid =
          Unix.create_process Sys.executable_name argv Unix.stdin devnull Unix.stderr
        in
        Unix.close devnull;
        let probe = Client.connect addr in
        let deadline = Unix.gettimeofday () +. 10.0 in
        let rec wait_ready () =
          match Client.ping ~budget:0.25 probe with
          | Ok _ -> ()
          | Error _ ->
            if Unix.gettimeofday () > deadline then begin
              (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
              die "bench-serve: daemon did not come up within 10 s"
            end
            else begin
              Unix.sleepf 0.02;
              wait_ready ()
            end
        in
        wait_ready ();
        Client.close probe;
        let row = run_measurement ~label ~shm ~nw addr in
        (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
        row
      in
      let shm = transport = `Shm in
      let tcp = transport = `Tcp in
      let base = hosted ~label ~shm ~tcp 1 in
      let main = if workers <= 1 then base else hosted ~label ~shm ~tcp workers in
      (* --transport=shm always measures a loopback-TCP run of the same
         shape in the same process, so the speedup is apples-to-apples:
         same structure, same walk, same worker count, same host *)
      let tcp_row =
        if shm then Some (hosted ~label:"tcp" ~shm:false ~tcp:true workers) else None
      in
      let result =
        (main, (if workers <= 1 then None else Some base), tcp_row)
      in
      let rec rm p =
        if Sys.is_directory p then begin
          Array.iter (fun n -> rm (Filename.concat p n)) (Sys.readdir p);
          try Unix.rmdir p with Unix.Unix_error _ -> ()
        end
        else try Sys.remove p with Sys_error _ -> ()
      in
      rm dir;
      result
  in
  let row_fields indent r =
    Printf.sprintf
      "%s\"transport\": %S,\n\
       %s\"workers\": %d,\n\
       %s\"queries_served\": %d,\n\
       %s\"wall_seconds\": %.4f,\n\
       %s\"served_queries_per_sec\": %.0f,\n\
       %s\"request_p50_us\": %.1f,\n\
       %s\"request_p99_us\": %.1f,\n\
       %s\"ring_requests\": %d,\n\
       %s\"mismatches\": %d,\n\
       %s\"errors\": %d,\n\
       %s\"degraded_replies\": %d"
      indent r.bs_transport indent r.bs_workers indent r.bs_served indent r.bs_seconds
      indent r.bs_rate indent r.bs_p50 indent r.bs_p99 indent r.bs_ring
      indent r.bs_mismatches indent r.bs_errors indent r.bs_degraded
  in
  let tail =
    (match baseline with
    | None -> ""
    | Some base ->
      Printf.sprintf
        ",\n\
        \  \"single_worker_baseline\": {\n%s\n  },\n\
        \  \"speedup_vs_single_worker\": %.3f"
        (row_fields "    " base)
        (main_row.bs_rate /. base.bs_rate))
    ^
    match tcp_row with
    | None -> ""
    | Some t ->
      Printf.sprintf
        ",\n\
        \  \"tcp_baseline\": {\n%s\n  },\n\
        \  \"speedup_shm_vs_tcp\": %.3f"
        (row_fields "    " t)
        (main_row.bs_rate /. t.bs_rate)
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"circuit\": %S,\n\
      \  \"budget\": %S,\n\
      \  \"clients\": %d,\n\
      \  \"requests_per_client\": %d,\n\
      \  \"batch\": %d,\n\
      \  \"depth\": %d,\n\
      \  \"host_cores\": %d,\n\
       %s%s\n\
       }\n"
      circuit.Circuit.name
      (match budget with Mps_experiments.Experiments.Quick -> "quick" | _ -> "full")
      clients per_client batch depth
      (Domain.recommended_domain_count ())
      (row_fields "  " main_row)
      tail
  in
  (try Persist.atomic_write ~path:out json with Sys_error msg -> die "%s" msg);
  Format.printf "wrote %s@." out;
  let mismatches =
    main_row.bs_mismatches
    + (match baseline with Some b -> b.bs_mismatches | None -> 0)
    + match tcp_row with Some t -> t.bs_mismatches | None -> 0
  in
  if mismatches > 0 then
    die "%d served answers disagreed with the in-process engine" mismatches;
  if transport = `Shm && main_row.bs_ring = 0 then
    die "--transport=shm but no request was served over the ring"

let batch_arg =
  Arg.(
    value
    & opt int 2048
    & info [ "batch" ] ~docv:"N" ~doc:"Queries per batch request.")

let requests_arg =
  Arg.(
    value
    & opt int 256
    & info [ "requests" ] ~docv:"N" ~doc:"Batch requests, split across the clients.")

let clients_arg =
  Arg.(
    value
    & opt int 2
    & info [ "clients" ] ~docv:"N" ~doc:"Client domains generating load.")

let attach_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "attach" ] ~docv:"ADDR"
        ~doc:
          "Benchmark a running daemon at $(docv) (a Unix socket path, or \
           $(b,tcp:HOST:PORT)) instead of self-hosting one.  The daemon must serve \
           the same deterministically generated structure, or every answer counts as \
           a mismatch.")

let bench_out_arg =
  Arg.(
    value
    & opt string "BENCH_SERVE.json"
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Where to write the JSON report.")

let transport_arg =
  Arg.(
    value
    & opt (enum [ ("unix", `Unix); ("tcp", `Tcp); ("shm", `Shm) ]) `Unix
    & info [ "transport" ] ~docv:"KIND"
        ~doc:
          "Transport under test.  $(b,unix) (default): Unix-domain socket.  \
           $(b,tcp): loopback TCP.  $(b,shm): the co-located shared-memory fast \
           path — clients negotiate a per-session ring over a Unix socket and route \
           batches through it, with MPSZ descriptor replies; a loopback-TCP run of \
           the same shape is measured in the same process and the report carries \
           both rows plus $(b,speedup_shm_vs_tcp).")

let depth_arg =
  Arg.(
    value
    & opt int 1
    & info [ "depth" ] ~docv:"N"
        ~doc:
          "Requests each client keeps in flight at once.  $(docv) = 1 (default): \
           one blocking request at a time.  $(docv) > 1: pipelined windows of \
           $(docv) requests; the reported per-request latency is each window's \
           wall time split evenly (amortized).")

let bench_workers_arg =
  Arg.(
    value
    & opt int 1
    & info [ "workers" ] ~docv:"N"
        ~doc:
          "Worker domains in the self-hosted daemon.  With $(docv) > 1 the bench \
           first measures a single-worker baseline and reports the speedup next to \
           it in the JSON.  Ignored (recorded verbatim) with $(b,--attach).")

let bench_serve_cmd =
  Cmd.v
    (Cmd.info "bench-serve"
       ~doc:
         "Measure end-to-end serving throughput and latency: self-host an mpsd (or \
          $(b,--attach) to one), drive sizing-walk batches from client domains, \
          cross-check every served answer against an in-process engine, and record \
          served queries/sec with p50/p99 request latency in a JSON report.  With \
          $(b,--workers) > 1 a single-worker baseline runs first and the report \
          carries both blocks plus the speedup.  Exits 1 on any mismatch.")
    Term.(
      const bench_serve $ circuit_arg $ budget_arg $ batch_arg $ requests_arg
      $ clients_arg $ bench_workers_arg $ attach_arg $ bench_out_arg $ jobs_arg
      $ transport_arg $ depth_arg)

let () =
  let doc = "multi-placement structures for analog placement (DATE 2005 reproduction)" in
  let info = Cmd.info "mpsgen" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; generate_cmd; instantiate_cmd; query_cmd; verify_cmd; pack_cmd;
            compact_cmd; stats_cmd; audit_cmd; repair_cmd; route_cmd; extend_cmd;
            experiments_cmd; serve_cmd; health_cmd; bench_serve_cmd ]))

(* mpsgen: command-line front end.

   - [mpsgen list]                    print the Table 1 inventory
   - [mpsgen generate CIRCUIT]        build a structure, report stats
   - [mpsgen instantiate CIRCUIT]     build + query one dimension vector
   - [mpsgen query CIRCUIT -i FILE]   query a saved structure
   - [mpsgen verify CIRCUIT -i FILE]  integrity-check a saved structure
   - [mpsgen extend CIRCUIT -i FILE]  resume exploration on a saved structure
   - [mpsgen experiments TARGET]      regenerate a table / figure / ablation

   [generate] and [extend] checkpoint with [--checkpoint FILE
   --checkpoint-every N --max-seconds S] and resume automatically when
   the checkpoint file exists. *)

open Cmdliner
open Mps_geometry
open Mps_netlist
open Mps_core

(* Clean one-line failure: no raw Sys_error backtraces out of the CLI. *)
let die fmt =
  Format.ksprintf
    (fun msg ->
      Format.eprintf "mpsgen: error: %s@." msg;
      exit 1)
    fmt

let load_structure ~circuit ~path =
  match Codec.load ~circuit ~path with
  | s -> s
  | exception Codec.Error e -> die "%s: %s" path (Codec.error_to_string e)
  | exception Sys_error msg -> die "%s" msg

let budget_conv =
  let parse = function
    | "quick" -> Ok Mps_experiments.Experiments.Quick
    | "full" -> Ok Mps_experiments.Experiments.Full
    | s -> Error (`Msg (Printf.sprintf "unknown budget %S (quick|full)" s))
  in
  let print fmt = function
    | Mps_experiments.Experiments.Quick -> Format.fprintf fmt "quick"
    | Mps_experiments.Experiments.Full -> Format.fprintf fmt "full"
  in
  Arg.conv (parse, print)

let budget_arg =
  Arg.(
    value
    & opt budget_conv Mps_experiments.Experiments.Quick
    & info [ "b"; "budget" ] ~docv:"BUDGET" ~doc:"Generation budget: quick or full.")

let circuit_conv =
  let parse s =
    match Benchmarks.by_name s with
    | c -> Ok c
    | exception Not_found ->
      let names = List.map (fun c -> c.Circuit.name) Benchmarks.all in
      Error (`Msg (Printf.sprintf "unknown circuit %S; known: %s" s (String.concat ", " names)))
  in
  Arg.conv (parse, fun fmt c -> Format.fprintf fmt "%s" c.Circuit.name)

let circuit_arg =
  Arg.(
    required
    & pos 0 (some circuit_conv) None
    & info [] ~docv:"CIRCUIT" ~doc:"Benchmark circuit name from Table 1 (see $(b,mpsgen list)).")

let jobs_arg =
  Arg.(
    value
    & opt int (Mps_parallel.Pool.default_jobs ())
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for the parallel phases (default: the machine's recommended \
           domain count, capped at 8).  Results are bit-identical at any job count.")

(* list *)

let list_cmd =
  let run () = print_string (Mps_experiments.Experiments.table1 ()) in
  Cmd.v (Cmd.info "list" ~doc:"Print the Table 1 benchmark inventory.") Term.(const run $ const ())

(* generate *)

(* Checkpoint plumbing shared by generate and extend: fold the flags
   into the generator config, resume automatically when the checkpoint
   file already exists, and retire a spent checkpoint once its run
   completed and the result is safely on disk. *)

let with_checkpointing base ~checkpoint ~checkpoint_every ~max_seconds =
  {
    base with
    Generator.checkpoint_path = checkpoint;
    checkpoint_every;
    max_seconds;
  }

let resume_if_checkpointed ~circuit ~checkpoint ~config ~jobs ~fresh =
  match checkpoint with
  | Some path when Sys.file_exists path -> (
    match Checkpoint.load ~circuit ~path with
    | cp ->
      Format.printf "Resuming from checkpoint %s (step %d, %d placements)...@." path
        cp.Checkpoint.step
        (Structure.n_placements cp.Checkpoint.structure);
      (* Parallel checkpoints carry per-walk streams and resume through
         the pool; sequential ones keep the original single-walk path. *)
      (match cp.Checkpoint.par with
      | Some _ -> Generator.resume_par ~config ~jobs cp
      | None -> Generator.resume ~config cp)
    | exception Codec.Error e -> die "checkpoint %s: %s" path (Codec.error_to_string e))
  | _ -> fresh ()

let report_stats stats =
  Format.printf
    "  placements stored: %d@.  coverage: %.4f@.  explorer steps: %d@.  dropped: %d@.  \
     CPU time: %s@."
    stats.Generator.placements_stored stats.Generator.coverage
    stats.Generator.explorer_steps stats.Generator.candidates_dropped
    (Mps_experiments.Text_table.seconds stats.Generator.generation_seconds);
  if stats.Generator.deadline_hit then
    Format.printf
      "  stopped early: wall-clock deadline reached (rerun to resume from the checkpoint)@."

let retire_checkpoint ~stats ~saved checkpoint =
  match checkpoint with
  | Some path when (not stats.Generator.deadline_hit) && saved && Sys.file_exists path ->
    (try Sys.remove path with Sys_error _ -> ());
    Format.printf "  removed spent checkpoint %s@." path
  | _ -> ()

let generate circuit budget svg_dir save_path checkpoint checkpoint_every max_seconds
    jobs =
  let config =
    with_checkpointing
      (Mps_experiments.Experiments.generator_config budget circuit)
      ~checkpoint ~checkpoint_every ~max_seconds
  in
  let structure, stats =
    resume_if_checkpointed ~circuit ~checkpoint ~config ~jobs ~fresh:(fun () ->
        Format.printf "Generating a multi-placement structure for %s (%d jobs)...@."
          circuit.Circuit.name jobs;
        Generator.generate_par ~config ~jobs circuit)
  in
  report_stats stats;
  print_string (Structure.describe structure);
  (match save_path with
  | None -> ()
  | Some path -> (
    match Codec.save structure ~path with
    | () -> Format.printf "  saved structure to %s@." path
    | exception Codec.Error e -> die "%s: %s" path (Codec.error_to_string e)));
  retire_checkpoint ~stats ~saved:(save_path <> None) checkpoint;
  match svg_dir with
  | None -> ()
  | Some dir ->
    let die_w, die_h = Structure.die structure in
    let best = Structure.backup structure in
    let rects = Stored.instantiate best best.Stored.best_dims in
    let path =
      Filename.concat dir
        (String.map (function ' ' -> '_' | c -> c) circuit.Circuit.name ^ ".svg")
    in
    Mps_render.Svg.save ~path ~title:circuit.Circuit.name circuit ~die_w ~die_h rects;
    Format.printf "  wrote %s@." path

let svg_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "svg" ] ~docv:"DIR" ~doc:"Also write the best placement as an SVG into $(docv).")

let save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "save" ] ~docv:"FILE"
        ~doc:"Persist the generated structure to $(docv) (reload with $(b,mpsgen query)).")

let checkpoint_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "checkpoint" ] ~docv:"FILE"
        ~doc:
          "Snapshot the generation run to $(docv) (written atomically) so a crash or \
           kill loses at most $(b,--checkpoint-every) steps of work.  When $(docv) \
           already exists the run resumes from it automatically.")

let checkpoint_every_arg =
  Arg.(
    value
    & opt int 5
    & info [ "checkpoint-every" ] ~docv:"N"
        ~doc:"Write the checkpoint every $(docv) explorer steps (with $(b,--checkpoint)).")

let max_seconds_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "max-seconds" ] ~docv:"S"
        ~doc:
          "Wall-clock deadline: stop gracefully after $(docv) seconds, keep the best \
           structure so far, and leave a final checkpoint to resume from.")

let generate_cmd =
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a multi-placement structure and report statistics.")
    Term.(
      const generate $ circuit_arg $ budget_arg $ svg_arg $ save_arg $ checkpoint_arg
      $ checkpoint_every_arg $ max_seconds_arg $ jobs_arg)

(* instantiate *)

type point =
  | Center
  | Min
  | Max
  | Random of int

let point_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ "center" ] -> Ok Center
    | [ "min" ] -> Ok Min
    | [ "max" ] -> Ok Max
    | [ "random" ] -> Ok (Random 1)
    | [ "random"; seed ] -> (
      match int_of_string_opt seed with
      | Some n -> Ok (Random n)
      | None -> Error (`Msg "random:<seed> needs an integer seed"))
    | _ -> Error (`Msg (Printf.sprintf "unknown point %S (center|min|max|random[:seed])" s))
  in
  let print fmt = function
    | Center -> Format.fprintf fmt "center"
    | Min -> Format.fprintf fmt "min"
    | Max -> Format.fprintf fmt "max"
    | Random n -> Format.fprintf fmt "random:%d" n
  in
  Arg.conv (parse, print)

let point_arg =
  Arg.(
    value
    & opt point_conv Center
    & info [ "p"; "point" ] ~docv:"POINT"
        ~doc:"Dimension vector to query: center, min, max or random[:seed].")

let instantiate circuit budget point =
  let config = Mps_experiments.Experiments.generator_config budget circuit in
  let structure, _ = Generator.generate ~config circuit in
  let bounds = Circuit.dim_bounds circuit in
  let dims =
    match point with
    | Center -> Dimbox.center bounds
    | Min -> Circuit.min_dims circuit
    | Max -> Circuit.max_dims circuit
    | Random seed -> Dimbox.random_dims (Mps_rng.Rng.create ~seed) bounds
  in
  let engine = Structure.Engine.create structure in
  let session = Structure.Engine.new_session () in
  let answer, stored = Structure.Engine.query engine session dims in
  let rects, cost = Structure.Engine.instantiate_cost engine session dims in
  let die_w, die_h = Structure.die structure in
  (match answer with
  | Structure.Stored_placement id ->
    Format.printf "Query hit stored placement #%d (avg cost %.1f, best cost %.1f).@." id
      stored.Stored.avg_cost stored.Stored.best_cost
  | Structure.Fallback -> Format.printf "Query fell back to the template placement.@."
  | Structure.Out_of_domain ->
    Format.printf "Dimensions outside the designer space: backup template used.@.");
  Format.printf "Instantiated floorplan (cost %.1f):@.%s" cost
    (Mps_render.Ascii.render ~max_cols:64 circuit ~die_w ~die_h rects)

let instantiate_cmd =
  Cmd.v
    (Cmd.info "instantiate"
       ~doc:"Generate a structure, query one dimension vector and print the floorplan.")
    Term.(const instantiate $ circuit_arg $ budget_arg $ point_arg)

(* query a saved structure *)

let dims_of_point circuit point =
  let bounds = Circuit.dim_bounds circuit in
  match point with
  | Center -> Dimbox.center bounds
  | Min -> Circuit.min_dims circuit
  | Max -> Circuit.max_dims circuit
  | Random seed -> Dimbox.random_dims (Mps_rng.Rng.create ~seed) bounds

(* Explicit dimension vectors: "WxH,WxH,..." one pair per block.  Any
   shape or range problem is a clean one-line error, never a raw
   exception out of the CLI. *)
let parse_dims circuit s =
  let pair tok =
    match String.split_on_char 'x' (String.trim tok) with
    | [ w; h ] -> (
      match (int_of_string_opt w, int_of_string_opt h) with
      | Some w, Some h -> (w, h)
      | _ -> die "bad dimension pair %S (expected WxH, e.g. 12x8)" tok)
    | _ -> die "bad dimension pair %S (expected WxH, e.g. 12x8)" tok
  in
  let pairs =
    String.split_on_char ',' s |> List.filter (fun t -> String.trim t <> "")
    |> List.map pair
  in
  let n = Circuit.n_blocks circuit in
  if List.length pairs <> n then
    die "expected %d WxH pairs for %s, got %d" n circuit.Circuit.name (List.length pairs);
  Dims.of_pairs (Array.of_list pairs)

let load_salvaged ~circuit ~path =
  match Codec.load_salvage ~circuit ~path with
  | Ok sv ->
    Format.printf "Salvaged %d placements (%d dropped, %d quarantined%s%s).@."
      sv.Codec.recovered sv.Codec.dropped sv.Codec.quarantined
      (if sv.Codec.backup_recovered then "" else ", backup lost")
      (if sv.Codec.checksum_ok then "" else ", checksum bad");
    sv.Codec.structure
  | Error e -> die "%s: %s" path (Codec.error_to_string e)

let query circuit path point dims_opt salvage =
  let structure =
    if salvage then load_salvaged ~circuit ~path else load_structure ~circuit ~path
  in
  let dims =
    match dims_opt with
    | Some s -> parse_dims circuit s
    | None -> dims_of_point circuit point
  in
  if not (Circuit.dims_valid circuit dims) then
    die "dimension vector outside the designer range for %s (see mpsgen list)"
      circuit.Circuit.name;
  let engine = Structure.Engine.create structure in
  let session = Structure.Engine.new_session () in
  let answer, stored = Structure.Engine.query engine session dims in
  let rects, cost = Structure.Engine.instantiate_cost engine session dims in
  let die_w, die_h = Structure.die structure in
  (match answer with
  | Structure.Stored_placement id ->
    Format.printf "Hit stored placement #%d (avg %.1f, best %.1f).@." id
      stored.Stored.avg_cost stored.Stored.best_cost
  | Structure.Fallback -> Format.printf "Uncovered dimensions: backup template used.@."
  | Structure.Out_of_domain ->
    Format.printf "Dimensions outside the designer space: backup template used.@.");
  Format.printf "Floorplan (cost %.1f):@.%s" cost
    (Mps_render.Ascii.render ~max_cols:64 circuit ~die_w ~die_h rects)

let load_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "i"; "load" ] ~docv:"FILE" ~doc:"Structure file written by $(b,mpsgen generate --save).")

let salvage_arg =
  Arg.(
    value & flag
    & info [ "salvage" ]
        ~doc:
          "Recover what is intact from a corrupt or truncated file instead of refusing \
           it; queries over lost territory fall back to the backup placement.")

let dims_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dims" ] ~docv:"DIMS"
        ~doc:
          "Explicit dimension vector, one WxH pair per block, comma separated (e.g. \
           $(b,12x8,10x20)).  Overrides $(b,--point).  Out-of-range vectors are \
           rejected with exit code 1.")

let query_cmd =
  Cmd.v
    (Cmd.info "query" ~doc:"Query a saved multi-placement structure (no regeneration).")
    Term.(const query $ circuit_arg $ load_arg $ point_arg $ dims_arg $ salvage_arg)

(* verify a saved structure *)

let verify circuit path =
  match Codec.load ~circuit ~path with
  | structure ->
    (* load already proved: readable, version/checksum intact, circuit
       identity, every placement well-formed, validity boxes disjoint
       (Structure.of_placements).  Report what was checked. *)
    let die_w, die_h = Structure.die structure in
    Format.printf
      "%s: OK@.  checksum: valid@.  circuit: %s (%d blocks, %d nets)@.  die: %dx%d@.  \
       placements: %d (%d explored), validity boxes disjoint@.  coverage: %.6f@."
      path circuit.Circuit.name (Circuit.n_blocks circuit) (Circuit.n_nets circuit) die_w
      die_h (Structure.n_placements structure)
      (Structure.n_explored structure) (Structure.coverage structure)
  | exception Codec.Error e ->
    Format.eprintf "%s: verify failed: %s@." path (Codec.error_to_string e);
    exit 1

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Check a saved structure end-to-end: checksum, format version, circuit \
          identity, placement well-formedness and validity-box disjointness.  Exits \
          nonzero with a line-accurate message on any failure.")
    Term.(const verify $ circuit_arg $ load_arg)

(* audit a saved structure *)

let audit circuit path salvage json samples seed out jobs =
  let structure =
    if salvage then load_salvaged ~circuit ~path else load_structure ~circuit ~path
  in
  let report =
    Mps_parallel.Pool.with_pool ~jobs (fun pool ->
        Audit.run ~pool ~samples_per_box:samples ~seed structure)
  in
  let rendered = if json then Audit.to_json report else Audit.to_string report in
  (match out with
  | None -> print_string rendered
  | Some p ->
    (try Persist.atomic_write ~path:p rendered
     with Sys_error msg -> die "%s" msg);
    Format.printf "wrote audit report to %s@." p;
    if not json then print_string rendered);
  if Audit.clean report then () else exit 1

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Emit the machine-readable JSON report instead of text.")

let samples_arg =
  Arg.(
    value
    & opt int 12
    & info [ "samples" ] ~docv:"N" ~doc:"Seeded legality samples per validity box.")

let audit_seed_arg =
  Arg.(
    value
    & opt int 7
    & info [ "seed" ] ~docv:"SEED" ~doc:"Seed for the audit's sampled checks.")

let report_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Also write the report to $(docv).")

let audit_cmd =
  Cmd.v
    (Cmd.info "audit"
       ~doc:
         "Re-prove every invariant of a saved structure: validity-box disjointness (eq. \
          5), box-in-expansion containment, floorplan legality at box corners and \
          seeded samples, cost-field consistency, backup legality and whole-space \
          query probes.  Exits 1 when any Fatal or Degraded finding survives.")
    Term.(
      const audit $ circuit_arg $ load_arg $ salvage_arg $ json_arg $ samples_arg
      $ audit_seed_arg $ report_out_arg $ jobs_arg)

(* repair a saved structure *)

let repair circuit path reanneal out jobs =
  let structure = load_salvaged ~circuit ~path in
  let config =
    { Repair.default_config with Repair.reanneal_iterations = reanneal }
  in
  let outcome =
    Mps_parallel.Pool.with_pool ~jobs (fun pool -> Repair.run ~pool ~config structure)
  in
  print_string (Audit.to_string outcome.Repair.before);
  Format.printf "%s@." (Repair.describe outcome);
  let dest = Option.value out ~default:path in
  (match Codec.save outcome.Repair.structure ~path:dest with
  | () -> Format.printf "saved repaired structure to %s@." dest
  | exception Codec.Error e -> die "%s: %s" dest (Codec.error_to_string e));
  print_string (Audit.to_string outcome.Repair.after);
  if Repair.clean outcome then () else exit 1

let reanneal_arg =
  Arg.(
    value
    & opt int 0
    & info [ "reanneal" ] ~docv:"N"
        ~doc:
          "Coordinate-annealing budget (iterations) for re-optimizing quarantined \
           territory; 0 leaves quarantined territory to the backup template.")

let repair_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "save" ] ~docv:"FILE"
        ~doc:"Where to write the repaired structure (default: overwrite the input).")

let repair_cmd =
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Salvage a saved structure, audit it, quarantine placements with fatal \
          findings (their territory falls to the backup template), refresh degraded \
          cost fields, optionally re-anneal quarantined boxes, re-audit and save.  \
          Exits 1 when the repaired structure is still not audit-clean.")
    Term.(const repair $ circuit_arg $ load_arg $ reanneal_arg $ repair_out_arg $ jobs_arg)

(* route a floorplan *)

let route circuit budget point =
  let config = Mps_experiments.Experiments.generator_config budget circuit in
  let structure, _ = Generator.generate ~config circuit in
  let dims = dims_of_point circuit point in
  let rects = Structure.instantiate structure dims in
  let die_w, die_h = Structure.die structure in
  let routing = Mps_route.Router.route circuit ~die_w ~die_h rects in
  Format.printf "Routed %d nets: total length %.0f, %d failed, overflow %d@."
    (Array.length routing.Mps_route.Router.nets) routing.Mps_route.Router.total_length
    routing.Mps_route.Router.failed_nets routing.Mps_route.Router.overflow;
  let grid =
    Mps_route.Route_grid.create ~die_w ~die_h
      ~cell:Mps_route.Router.default_config.Mps_route.Router.cell
      ~capacity:Mps_route.Router.default_config.Mps_route.Router.capacity rects
  in
  let wire_points =
    Array.to_list routing.Mps_route.Router.nets
    |> List.concat_map (fun (net : Mps_route.Router.routed_net) ->
           List.map (Mps_route.Route_grid.center_of_cell grid) net.Mps_route.Router.cells)
  in
  print_string
    (Mps_render.Ascii.render_routed ~max_cols:72 circuit ~die_w ~die_h rects ~wire_points)

let route_cmd =
  Cmd.v
    (Cmd.info "route"
       ~doc:"Generate, instantiate and maze-route a floorplan; print the wire overlay.")
    Term.(const route $ circuit_arg $ budget_arg $ point_arg)

(* extend a saved structure *)

let extend circuit path budget seed save_path checkpoint checkpoint_every max_seconds
    jobs =
  let base = Mps_experiments.Experiments.generator_config budget circuit in
  let config =
    with_checkpointing
      { base with Generator.seed; max_placements = base.Generator.max_placements * 2 }
      ~checkpoint ~checkpoint_every ~max_seconds
  in
  let extended, stats =
    resume_if_checkpointed ~circuit ~checkpoint ~config ~jobs ~fresh:(fun () ->
        let structure = load_structure ~circuit ~path in
        Format.printf "Loaded %d explored placements; resuming exploration...@."
          (Structure.n_explored structure);
        Generator.extend ~config structure)
  in
  Format.printf "  now %d explored placements (coverage %.6f, %s CPU)@."
    (Structure.n_explored extended) stats.Generator.coverage
    (Mps_experiments.Text_table.seconds stats.Generator.generation_seconds);
  if stats.Generator.deadline_hit then
    Format.printf
      "  stopped early: wall-clock deadline reached (rerun to resume from the checkpoint)@.";
  let out = Option.value save_path ~default:path in
  (match Codec.save extended ~path:out with
  | () -> Format.printf "  saved to %s@." out
  | exception Codec.Error e -> die "%s: %s" out (Codec.error_to_string e));
  retire_checkpoint ~stats ~saved:true checkpoint

let seed_arg =
  Arg.(
    value
    & opt int 99
    & info [ "seed" ] ~docv:"SEED" ~doc:"Explorer seed for the resumed walk.")

let extend_save_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "save" ] ~docv:"FILE"
        ~doc:"Where to write the extended structure (default: overwrite the input).")

let extend_cmd =
  Cmd.v
    (Cmd.info "extend"
       ~doc:"Resume exploration on a saved structure and store the extended result.")
    Term.(
      const extend $ circuit_arg $ load_arg $ budget_arg $ seed_arg $ extend_save_arg
      $ checkpoint_arg $ checkpoint_every_arg $ max_seconds_arg $ jobs_arg)

(* experiments *)

let experiment_targets =
  [
    ("table1", `Table1);
    ("table2", `Table2);
    ("figure5", `Figure5);
    ("figure6", `Figure6);
    ("figure7", `Figure7);
    ("ablation-shrink", `Ablation_shrink);
    ("ablation-explorer", `Ablation_explorer);
    ("ablation-query", `Ablation_query);
    ("ablation-fallback", `Ablation_fallback);
    ("ablation-parasitics", `Ablation_parasitics);
    ("ablation-refine", `Ablation_refine);
    ("synthesis", `Synthesis);
    ("all", `All);
  ]

let target_arg =
  Arg.(
    required
    & pos 0 (some (enum experiment_targets)) None
    & info [] ~docv:"TARGET"
        ~doc:
          "One of: table1, table2, figure5, figure6, figure7, ablation-shrink, \
           ablation-explorer, ablation-query, synthesis, all.")

let run_experiment target budget csv_dir =
  let module E = Mps_experiments.Experiments in
  let module Csv = Mps_experiments.Csv in
  let save_csv name content =
    match csv_dir with
    | None -> ()
    | Some dir ->
      let path = Filename.concat dir (name ^ ".csv") in
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content);
      Format.printf "wrote %s@." path
  in
  let run = function
    | `Table1 -> print_string (E.table1 ())
    | `Table2 ->
      let rows, report = E.table2 ~budget () in
      print_string report;
      save_csv "table2" (Csv.table2 rows)
    | `Figure5 -> print_string (E.figure5 ~budget ())
    | `Figure6 ->
      let points, report = E.figure6 ~budget () in
      print_string report;
      save_csv "figure6" (Csv.figure6 points)
    | `Figure7 -> print_string (E.figure7 ~budget ())
    | `Ablation_shrink -> print_string (E.ablation_shrink ~budget ())
    | `Ablation_explorer -> print_string (E.ablation_explorer ~budget ())
    | `Ablation_query -> print_string (E.ablation_query ~budget ())
    | `Ablation_fallback -> print_string (E.ablation_fallback ~budget ())
    | `Ablation_parasitics -> print_string (E.ablation_parasitics ~budget ())
    | `Ablation_refine -> print_string (E.ablation_refine ~budget ())
    | `Synthesis -> print_string (E.synthesis_comparison ~budget ())
    | `All -> assert false
  in
  match target with
  | `All ->
    List.iter
      (fun (_, t) ->
        if t <> `All then begin
          run t;
          print_newline ()
        end)
      experiment_targets
  | t -> run t

let csv_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "csv" ] ~docv:"DIR"
        ~doc:"Also write the experiment's data series as CSV into $(docv) (table2, figure6).")

let experiments_cmd =
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate a table, figure or ablation from the paper.")
    Term.(const run_experiment $ target_arg $ budget_arg $ csv_arg)

let () =
  let doc = "multi-placement structures for analog placement (DATE 2005 reproduction)" in
  let info = Cmd.info "mpsgen" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; generate_cmd; instantiate_cmd; query_cmd; verify_cmd; audit_cmd;
            repair_cmd; route_cmd; extend_cmd; experiments_cmd ]))
